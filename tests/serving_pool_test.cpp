// ServingPool tests: M concurrent TCP clients against one pool must get
// logits bit-identical to sequential serving; a saturated pool must
// answer with the typed BUSY rejection (net::ServerBusy on the client);
// drain() must finish every admitted session; aggregate stats must sum
// the per-session accounting exactly; and the windowed TailBatcher must
// coalesce the clear tails of concurrent clients into ONE plaintext pass
// without changing any client's logits.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "net/tcp.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"
#include "pi/serving_pool.hpp"

namespace c2pi::pi {
namespace {

/// Same reference topology as service_test.cpp: conv/pool/ReLU/FC
/// coverage, fast enough for MPC under a sanitizer.
nn::Sequential make_test_model(std::uint64_t seed = 7) {
    Rng rng(seed);
    nn::Sequential m;
    m.emplace<nn::Conv2d>(3, 6, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::MaxPool2d>(2, 2);
    m.emplace<nn::Conv2d>(6, 8, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::MaxPool2d>(2, 2);
    m.emplace<nn::Flatten>();
    m.emplace<nn::Linear>(8 * 4 * 4, 16, rng);
    m.emplace<nn::Relu>();
    m.emplace<nn::Linear>(16, 10, rng);
    return m;
}

CompiledModel::Options boundary_compile_options() {
    CompiledModel::Options opts;
    opts.input_chw = {3, 16, 16};
    opts.he_ring_degree = 1024;
    opts.boundary = nn::CutPoint{.linear_index = 2, .after_relu = true};
    return opts;
}

std::vector<Tensor> make_inputs(std::size_t n) {
    std::vector<Tensor> inputs;
    for (std::size_t i = 0; i < n; ++i) {
        Rng rng(100 + i);
        inputs.push_back(Tensor::uniform({1, 3, 16, 16}, rng, 0.0F, 1.0F));
    }
    return inputs;
}

/// One weightless TCP client, the deployed shape: artifact over the
/// wire, ClientModel compiled from it, one inference.
struct ClientRun {
    Tensor logits;
    PiStats stats;
};

ClientRun run_weightless_client(std::uint16_t port, const SessionConfig& config,
                                const Tensor& input, ArtifactCache* cache = nullptr) {
    auto transport = net::connect("127.0.0.1", port, /*timeout_ms=*/30'000);
    transport->set_recv_timeout(120'000);
    const Bootstrap boot = fetch_artifact(*transport, cache);
    const ClientSession session(*boot.model, config);
    ClientRun run;
    run.logits = session.run(*transport, input);
    run.stats = stats_from_channel(transport->stats());
    transport->close();
    return run;
}

// ---------------------------------------------------- concurrent parity ---

TEST(ServingPool, ConcurrentClientsBitIdenticalToSequentialAndStatsSum) {
    const nn::Sequential model = make_test_model();
    const CompiledModel compiled(model, boundary_compile_options());
    const SessionConfig config{.noise_lambda = 0.05F, .seed = 42};

    constexpr std::size_t kClients = 3;
    const auto inputs = make_inputs(kClients);

    // Sequential reference: the in-process session pair (already proven
    // transport-equivalent by tcp_test/artifact_test).
    std::vector<PiResult> reference;
    for (const auto& x : inputs)
        reference.push_back(run_private_inference(compiled, config, x));

    ServingPool pool(compiled, config,
                     {.workers = static_cast<int>(kClients), .queue_capacity = 2});
    net::TcpListener listener(0);

    std::vector<ClientRun> runs(kClients);
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < kClients; ++i)
        clients.emplace_back([&, i] {
            runs[i] = run_weightless_client(listener.port(), config, inputs[i]);
        });
    for (std::size_t i = 0; i < kClients; ++i)
        ASSERT_TRUE(pool.serve(listener.accept(30'000))) << "client " << i;
    for (auto& t : clients) t.join();
    pool.drain();

    const auto stats = pool.stats();
    EXPECT_EQ(stats.accepted, kClients);
    EXPECT_EQ(stats.served, kClients);
    EXPECT_EQ(stats.rejected, 0U);
    EXPECT_EQ(stats.failed, 0U);
    EXPECT_EQ(stats.active, 0);
    EXPECT_GE(stats.concurrent_peak, 1);
    EXPECT_LE(stats.concurrent_peak, static_cast<int>(kClients));

    PiStats summed;
    for (std::size_t i = 0; i < kClients; ++i) {
        ASSERT_TRUE(runs[i].logits.same_shape(reference[i].logits)) << i;
        EXPECT_TRUE(runs[i].logits.allclose(reference[i].logits, 0.0F))
            << "client " << i << " diverged from sequential serving";
        // Per-request traffic over the pool matches the sequential run.
        EXPECT_EQ(runs[i].stats.offline_bytes, reference[i].stats.offline_bytes) << i;
        EXPECT_EQ(runs[i].stats.online_bytes, reference[i].stats.online_bytes) << i;
        EXPECT_EQ(runs[i].stats.offline_flights, reference[i].stats.offline_flights) << i;
        EXPECT_EQ(runs[i].stats.online_flights, reference[i].stats.online_flights) << i;
        summed.offline_bytes += reference[i].stats.offline_bytes;
        summed.online_bytes += reference[i].stats.online_bytes;
        summed.offline_flights += reference[i].stats.offline_flights;
        summed.online_flights += reference[i].stats.online_flights;
    }
    // The pool's aggregate is exactly the sum of its sessions.
    EXPECT_EQ(stats.traffic.offline_bytes, summed.offline_bytes);
    EXPECT_EQ(stats.traffic.online_bytes, summed.online_bytes);
    EXPECT_EQ(stats.traffic.offline_flights, summed.offline_flights);
    EXPECT_EQ(stats.traffic.online_flights, summed.online_flights);
    EXPECT_GT(stats.traffic.wall_seconds, 0.0);
}

// ------------------------------------------------- cross-client batching ---

TEST(ServingPool, WindowedTailCoalescesAcrossClientsBitIdentically) {
    const nn::Sequential model = make_test_model();
    const CompiledModel compiled(model, boundary_compile_options());
    const SessionConfig config{.seed = 5};

    constexpr std::size_t kClients = 3;
    const auto inputs = make_inputs(kClients);
    std::vector<Tensor> reference;
    for (const auto& x : inputs)
        reference.push_back(run_private_inference(compiled, config, x).logits);
    const std::uint64_t passes_before = compiled.clear_tail_passes();

    // Window far above the crypto-phase spread; the group still closes
    // with zero extra wait once all kClients (== workers) deposited.
    ServingPool pool(compiled, config,
                     {.workers = static_cast<int>(kClients),
                      .queue_capacity = 2,
                      .tail_window_ms = 60'000});
    net::TcpListener listener(0);

    std::vector<ClientRun> runs(kClients);
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < kClients; ++i)
        clients.emplace_back([&, i] {
            runs[i] = run_weightless_client(listener.port(), config, inputs[i]);
        });
    for (std::size_t i = 0; i < kClients; ++i)
        ASSERT_TRUE(pool.serve(listener.accept(30'000))) << "client " << i;
    for (auto& t : clients) t.join();
    pool.drain();

    // ONE batched plaintext pass served every client's clear tail...
    EXPECT_EQ(compiled.clear_tail_passes() - passes_before, 1U);
    const auto stats = pool.stats();
    EXPECT_EQ(stats.served, kClients);
    EXPECT_EQ(stats.tail_batches, 1U);
    EXPECT_EQ(stats.tail_requests, kClients);
    // ...without changing anyone's logits.
    for (std::size_t i = 0; i < kClients; ++i)
        EXPECT_TRUE(runs[i].logits.allclose(reference[i], 0.0F))
            << "client " << i << " diverged under cross-client tail batching";
}

// ------------------------------------------------------ typed rejection ---

TEST(ServingPool, OverloadRejectsWithTypedBusyFrame) {
    const nn::Sequential model = make_test_model();
    const CompiledModel compiled(model, boundary_compile_options());
    const SessionConfig config{.seed = 9};

    // One worker, zero queue: the second admission attempt must refuse.
    ServingPool pool(compiled, config, {.workers = 1, .queue_capacity = 0});
    net::TcpListener listener(0);

    const auto inputs = make_inputs(1);
    ClientRun first;
    std::thread first_client(
        [&] { first = run_weightless_client(listener.port(), config, inputs[0]); });
    ASSERT_TRUE(pool.serve(listener.accept(30'000)));

    // serve() counts the admitted session immediately, so this is
    // deterministic even if the worker has not picked it up yet.
    std::thread second_client([&] {
        auto transport = net::connect("127.0.0.1", listener.port(), 30'000);
        transport->set_recv_timeout(30'000);
        EXPECT_THROW((void)transport->recv_artifact_bytes(), net::ServerBusy);
        transport->close();
    });
    EXPECT_FALSE(pool.serve(listener.accept(30'000)));

    first_client.join();
    second_client.join();
    pool.drain();

    const auto stats = pool.stats();
    EXPECT_EQ(stats.accepted, 2U);
    EXPECT_EQ(stats.served, 1U);
    EXPECT_EQ(stats.rejected, 1U);
    EXPECT_EQ(stats.failed, 0U);
    EXPECT_EQ(first.logits.numel(), 10);
}

// ------------------------------------------------------- graceful drain ---

TEST(ServingPool, DrainFinishesInFlightSessionsAndRefusesNewOnes) {
    const nn::Sequential model = make_test_model();
    const CompiledModel compiled(model, boundary_compile_options());
    const SessionConfig config{.seed = 11};

    auto pool = std::make_unique<ServingPool>(
        compiled, config, ServingPool::Options{.workers = 2, .queue_capacity = 2});
    net::TcpListener listener(0);

    constexpr std::size_t kClients = 2;
    const auto inputs = make_inputs(kClients);
    std::vector<ClientRun> runs(kClients);
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < kClients; ++i)
        clients.emplace_back([&, i] {
            runs[i] = run_weightless_client(listener.port(), config, inputs[i]);
        });
    for (std::size_t i = 0; i < kClients; ++i)
        ASSERT_TRUE(pool->serve(listener.accept(30'000)));

    // Drain while both sessions are in flight: every admitted session
    // must still complete — no client loses its inference.
    pool->drain();
    for (auto& t : clients) t.join();
    EXPECT_EQ(pool->stats().served, kClients);
    for (std::size_t i = 0; i < kClients; ++i) EXPECT_EQ(runs[i].logits.numel(), 10) << i;

    // After the drain the pool only refuses — with the same typed frame.
    std::thread late_client([&] {
        auto transport = net::connect("127.0.0.1", listener.port(), 30'000);
        transport->set_recv_timeout(30'000);
        EXPECT_THROW((void)transport->recv_artifact_bytes(), net::ServerBusy);
        transport->close();
    });
    EXPECT_FALSE(pool->serve(listener.accept(30'000)));
    late_client.join();
    EXPECT_EQ(pool->stats().rejected, 1U);
    pool.reset();  // destructor drains again: idempotent
}

// ----------------------------------------------------------- validation ---

TEST(ServingPool, RejectsBadOptionsAtTheApiBoundary) {
    const nn::Sequential model = make_test_model();
    const CompiledModel compiled(model, boundary_compile_options());
    const SessionConfig config{};
    EXPECT_THROW(ServingPool(compiled, config, {.workers = -1}), Error);
    EXPECT_THROW(ServingPool(compiled, config, {.workers = 2000}), Error);
    EXPECT_THROW(ServingPool(compiled, config, {.queue_capacity = -1}), Error);
    EXPECT_THROW(ServingPool(compiled, config, {.tail_window_ms = -5}), Error);
    EXPECT_THROW(ServingPool(compiled, config, {.recv_timeout_ms = -1}), Error);
    EXPECT_THROW(ServingPool(compiled, config, {.handshake_timeout_ms = -1}), Error);
}

}  // namespace
}  // namespace c2pi::pi
