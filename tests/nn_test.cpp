// Tests for the NN stack: layer gradient checks, Sequential cut-point
// arithmetic, model topology invariants, optimizer behaviour, training
// convergence on a tiny problem, and parameter serialization.

#include <gtest/gtest.h>

#include <cstdio>

#include "nn/layers.hpp"
#include "nn/models.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "nn/zoo.hpp"

namespace c2pi {
namespace {

using nn::CutPoint;

/// Central finite-difference check of dL/dx for L = sum(layer(x)).
void check_input_gradient(nn::Layer& layer, const Tensor& x, float eps = 1e-2F,
                          float tol = 3e-2F) {
    const Tensor y = layer.forward(x);
    Tensor gy(y.shape());
    gy.fill(1.0F);
    const Tensor gx = layer.backward(gy);
    ASSERT_EQ(gx.numel(), x.numel());
    for (std::int64_t i = 0; i < std::min<std::int64_t>(x.numel(), 40); i += 3) {
        Tensor xp = x, xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        const float fp = ops::sum(layer.forward(xp));
        const float fm = ops::sum(layer.forward(xm));
        EXPECT_NEAR(gx[i], (fp - fm) / (2 * eps), tol) << "index " << i;
    }
}

TEST(Layers, Conv2dInputGradient) {
    Rng rng(1);
    nn::Conv2d conv(2, 3, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    check_input_gradient(conv, Tensor::randn({1, 2, 5, 5}, rng));
}

TEST(Layers, DilatedConv2dInputGradient) {
    Rng rng(2);
    nn::Conv2d conv(2, 2, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 2, .dilation = 2}, rng);
    check_input_gradient(conv, Tensor::randn({1, 2, 6, 6}, rng));
}

TEST(Layers, LinearInputGradient) {
    Rng rng(3);
    nn::Linear fc(6, 4, rng);
    check_input_gradient(fc, Tensor::randn({2, 6}, rng));
}

TEST(Layers, LinearParameterGradient) {
    Rng rng(4);
    nn::Linear fc(3, 2, rng);
    const Tensor x = Tensor::randn({2, 3}, rng);
    const Tensor y = fc.forward(x);
    Tensor gy(y.shape());
    gy.fill(1.0F);
    (void)fc.backward(gy);
    const float eps = 1e-2F;
    for (std::int64_t i = 0; i < fc.weight().value.numel(); ++i) {
        nn::Linear probe(3, 2, rng);
        // Copy weights, perturb one.
        probe.weight().value = fc.weight().value;
        probe.bias().value = fc.bias().value;
        probe.weight().value[i] += eps;
        const float fp = ops::sum(probe.forward(x));
        probe.weight().value[i] -= 2 * eps;
        const float fm = ops::sum(probe.forward(x));
        EXPECT_NEAR(fc.weight().grad[i], (fp - fm) / (2 * eps), 3e-2F);
    }
}

TEST(Layers, ResidualBlockGradientAndShape) {
    Rng rng(5);
    nn::ResidualBlock block(3, 5, rng);
    const Tensor x = Tensor::randn({1, 3, 6, 6}, rng, 0.5F);
    const Tensor y = block.forward(x);
    EXPECT_EQ(y.dim(1), 5);
    EXPECT_EQ(y.dim(2), 6);
    check_input_gradient(block, x, 1e-2F, 5e-2F);
}

TEST(Layers, ResidualBlockIdentitySkipWhenChannelsMatch) {
    Rng rng(6);
    nn::ResidualBlock block(4, 4, rng);
    std::vector<nn::Parameter*> params;
    block.collect_parameters(params);
    EXPECT_EQ(params.size(), 4U);  // two convs x (weight + bias), no projection
}

TEST(Layers, MaxPoolBackwardGradient) {
    Rng rng(7);
    nn::MaxPool2d pool(2, 2);
    check_input_gradient(pool, Tensor::randn({1, 2, 4, 4}, rng));
}

TEST(Sequential, ForwardRangeComposition) {
    Rng rng(8);
    nn::Sequential model;
    model.emplace<nn::Conv2d>(1, 2, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    model.emplace<nn::Relu>();
    model.emplace<nn::Flatten>();
    model.emplace<nn::Linear>(2 * 4 * 4, 3, rng);
    const Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
    const Tensor full = model.forward(x);
    const Tensor mid = model.forward_range(0, 2, x);
    const Tensor rest = model.forward_range(2, model.size(), mid);
    EXPECT_TRUE(full.allclose(rest));
}

TEST(Sequential, CutPointFlatIndexConvention) {
    Rng rng(9);
    nn::Sequential model;
    model.emplace<nn::Conv2d>(1, 2, ops::ConvSpec{}, rng);  // flat 0, linear op 1
    model.emplace<nn::Relu>();                              // flat 1 -> "1.5"
    model.emplace<nn::MaxPool2d>(2, 2);                     // flat 2
    model.emplace<nn::Conv2d>(2, 2, ops::ConvSpec{}, rng);  // flat 3, linear op 2
    model.emplace<nn::Relu>();                              // flat 4 -> "2.5"
    model.emplace<nn::Flatten>();                           // flat 5
    model.emplace<nn::Linear>(2 * 4 * 4, 3, rng);           // flat 6, linear op 3

    EXPECT_EQ(model.num_linear_ops(), 3);
    EXPECT_EQ(model.flat_cut_index({.linear_index = 1, .after_relu = false}), 0U);
    EXPECT_EQ(model.flat_cut_index({.linear_index = 1, .after_relu = true}), 1U);
    EXPECT_EQ(model.flat_cut_index({.linear_index = 2, .after_relu = true}), 4U);
    EXPECT_EQ(model.flat_cut_index({.linear_index = 3, .after_relu = false}), 6U);
    // Linear op 3 has no trailing ReLU: the ".5" position is invalid.
    EXPECT_THROW((void)model.flat_cut_index({.linear_index = 3, .after_relu = true}), Error);
    EXPECT_THROW((void)model.flat_cut_index({.linear_index = 4, .after_relu = false}), Error);
}

TEST(Sequential, PrefixSuffixEqualsFullForward) {
    nn::ModelConfig cfg;
    cfg.width_multiplier = 0.1F;
    cfg.input_hw = 32;
    nn::Sequential model = nn::make_vgg16(cfg);
    Rng rng(10);
    const Tensor x = Tensor::uniform({1, 3, 32, 32}, rng, 0.0F, 1.0F);
    const Tensor full = model.forward(x);
    for (const CutPoint cut : {CutPoint{3, false}, CutPoint{7, true}, CutPoint{13, false}}) {
        const Tensor act = model.forward_prefix(cut, x);
        const Tensor out = model.forward_suffix(cut, act);
        EXPECT_TRUE(full.allclose(out, 1e-4F)) << "cut " << cut.as_decimal();
    }
}

TEST(Models, Vgg16HasThirteenConvs) {
    nn::ModelConfig cfg;
    cfg.width_multiplier = 0.05F;
    nn::Sequential m = nn::make_vgg16(cfg);
    std::int64_t convs = 0;
    for (std::size_t i = 0; i < m.size(); ++i)
        convs += (m.layer(i).kind() == nn::LayerKind::kConv2d);
    EXPECT_EQ(convs, 13);
    EXPECT_EQ(m.num_linear_ops(), 14);  // 13 convs + classifier FC
}

TEST(Models, Vgg19HasSixteenConvs) {
    nn::ModelConfig cfg;
    cfg.width_multiplier = 0.05F;
    nn::Sequential m = nn::make_vgg19(cfg);
    std::int64_t convs = 0;
    for (std::size_t i = 0; i < m.size(); ++i)
        convs += (m.layer(i).kind() == nn::LayerKind::kConv2d);
    EXPECT_EQ(convs, 16);
}

TEST(Models, AlexNetHasFiveConvsThreeFcs) {
    nn::ModelConfig cfg;
    cfg.width_multiplier = 0.05F;
    nn::Sequential m = nn::make_alexnet(cfg);
    std::int64_t convs = 0, fcs = 0;
    for (std::size_t i = 0; i < m.size(); ++i) {
        convs += (m.layer(i).kind() == nn::LayerKind::kConv2d);
        fcs += (m.layer(i).kind() == nn::LayerKind::kLinear);
    }
    EXPECT_EQ(convs, 5);
    EXPECT_EQ(fcs, 3);
}

TEST(Models, OutputShapeMatchesClasses) {
    nn::ModelConfig cfg;
    cfg.width_multiplier = 0.05F;
    cfg.num_classes = 20;
    for (const char* name : {"alexnet", "vgg16", "vgg19", "resnet9", "resnet18"}) {
        nn::Graph m = nn::zoo::build(name, cfg);
        Rng rng(11);
        const Tensor x = Tensor::uniform({2, 3, 32, 32}, rng, 0.0F, 1.0F);
        const Tensor y = m.forward(x);
        EXPECT_EQ(y.dim(0), 2) << name;
        EXPECT_EQ(y.dim(1), 20) << name;
    }
}

TEST(Zoo, UnknownIdThrowsTypedError) {
    nn::ModelConfig cfg;
    EXPECT_THROW(nn::zoo::build("resnet50", cfg), nn::zoo::UnknownModel);
    // The typed error names the bad id and the known catalogue.
    try {
        nn::zoo::build("resnet50", cfg);
        FAIL() << "expected UnknownModel";
    } catch (const nn::zoo::UnknownModel& e) {
        EXPECT_NE(std::string(e.what()).find("resnet50"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("resnet9"), std::string::npos);
    }
}

TEST(Zoo, ListDescribesCatalogue) {
    const auto& catalogue = nn::zoo::list();
    ASSERT_EQ(catalogue.size(), 5U);
    bool saw_resnet9 = false;
    for (const auto& d : catalogue) {
        EXPECT_FALSE(d.id.empty());
        EXPECT_FALSE(d.description.empty());
        EXPECT_GT(d.param_count, 0);
        EXPECT_GT(d.num_linear_ops, 0);
        if (d.id == "resnet9") {
            saw_resnet9 = true;
            EXPECT_TRUE(d.residual);
            EXPECT_EQ(d.num_linear_ops, 8);
        }
    }
    EXPECT_TRUE(saw_resnet9);
}

TEST(Graph, ResidualForwardMatchesManualComposition) {
    Rng rng(21);
    nn::Graph g;
    const auto c0 = g.add_node(
        std::make_unique<nn::Conv2d>(2, 2, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng),
        nn::Graph::kInput);
    const auto r0 = g.add_node(std::make_unique<nn::Relu>(), c0);
    const auto c1 = g.add_node(
        std::make_unique<nn::Conv2d>(2, 2, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng),
        r0);
    const auto sum = g.add_residual(c1, c0);
    (void)g.add_node(std::make_unique<nn::Relu>(), sum);

    const Tensor x = Tensor::randn({1, 2, 5, 5}, rng);
    const Tensor got = g.infer(x);
    // Manual composition of the same layer objects over the same DAG.
    const Tensor t0 = g.layer(static_cast<std::size_t>(c0)).infer(x);
    const Tensor t1 = g.layer(static_cast<std::size_t>(r0)).infer(t0);
    const Tensor t2 = g.layer(static_cast<std::size_t>(c1)).infer(t1);
    const Tensor t3 = ops::add(t2, t0);
    const Tensor want = g.layer(4).infer(t3);
    EXPECT_TRUE(got.allclose(want));
}

TEST(Graph, ResidualBackwardMatchesFiniteDifference) {
    Rng rng(22);
    nn::Graph g;
    const auto c0 = g.add_node(
        std::make_unique<nn::Conv2d>(1, 2, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng),
        nn::Graph::kInput);
    const auto r0 = g.add_node(std::make_unique<nn::Relu>(), c0);
    const auto c1 = g.add_node(
        std::make_unique<nn::Conv2d>(2, 2, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng),
        r0);
    (void)g.add_residual(c1, c0);  // fan-out on c0: grads must accumulate

    const Tensor x = Tensor::randn({1, 1, 4, 4}, rng, 0.5F);
    const Tensor y = g.forward(x);
    Tensor gy(y.shape());
    gy.fill(1.0F);
    const Tensor gx = g.backward_range(0, g.size(), gy);
    ASSERT_EQ(gx.numel(), x.numel());
    const float eps = 1e-2F;
    for (std::int64_t i = 0; i < x.numel(); i += 2) {
        Tensor xp = x, xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        const float fp = ops::sum(g.forward(xp));
        const float fm = ops::sum(g.forward(xm));
        EXPECT_NEAR(gx[i], (fp - fm) / (2 * eps), 5e-2F) << "index " << i;
    }
}

TEST(Graph, FoldBatchNormsPreservesInference) {
    nn::ModelConfig cfg;
    cfg.width_multiplier = 0.1F;
    cfg.input_hw = 16;
    nn::Graph with_bn = nn::make_resnet9(cfg, /*fold_bn=*/false);
    nn::Graph folded = nn::make_resnet9(cfg, /*fold_bn=*/true);  // same seed, same weights
    EXPECT_LT(folded.size(), with_bn.size());
    for (std::size_t i = 0; i < folded.size(); ++i) {
        if (folded.is_add(i)) continue;
        EXPECT_NE(folded.layer(i).kind(), nn::LayerKind::kBatchNorm);
    }
    Rng rng(23);
    const Tensor x = Tensor::uniform({2, 3, 16, 16}, rng, 0.0F, 1.0F);
    const Tensor want = with_bn.infer(x);
    const Tensor got = folded.infer(x);
    EXPECT_TRUE(got.allclose(want, 1e-4F));
}

TEST(Graph, ArticulationPointsExcludeSkipSpans) {
    Rng rng(24);
    nn::Graph g;
    const auto c0 = g.add_node(
        std::make_unique<nn::Conv2d>(2, 2, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng),
        nn::Graph::kInput);
    const auto r0 = g.add_node(std::make_unique<nn::Relu>(), c0);
    const auto c1 = g.add_node(
        std::make_unique<nn::Conv2d>(2, 2, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng),
        r0);
    const auto sum = g.add_residual(c1, c0);
    const auto r1 = g.add_node(std::make_unique<nn::Relu>(), sum);
    // The skip edge (c0 -> add) crosses every node strictly inside it.
    EXPECT_TRUE(g.is_articulation(static_cast<std::size_t>(c0)));
    EXPECT_FALSE(g.is_articulation(static_cast<std::size_t>(r0)));
    EXPECT_FALSE(g.is_articulation(static_cast<std::size_t>(c1)));
    EXPECT_TRUE(g.is_articulation(static_cast<std::size_t>(sum)));
    EXPECT_TRUE(g.is_articulation(static_cast<std::size_t>(r1)));
    // A pure chain is all articulation points.
    nn::Sequential chain;
    chain.emplace<nn::Relu>();
    chain.emplace<nn::Flatten>();
    EXPECT_TRUE(chain.is_linear_chain());
    EXPECT_TRUE(chain.is_articulation(0));
    EXPECT_TRUE(chain.is_articulation(1));
}

TEST(Models, ScaledChannelsFloorsAtFour) {
    EXPECT_EQ(nn::scaled_channels(64, 0.25F), 16);
    EXPECT_EQ(nn::scaled_channels(64, 0.01F), 4);
    EXPECT_EQ(nn::scaled_channels(512, 1.0F), 512);
}

TEST(Optimizer, SgdReducesQuadraticLoss) {
    // Minimise ||x - 3||^2 over a single 1-element parameter.
    nn::Parameter p(Tensor({1}, {0.0F}));
    nn::Sgd opt({&p}, 0.1F, 0.0F);
    for (int i = 0; i < 100; ++i) {
        p.grad[0] = 2.0F * (p.value[0] - 3.0F);
        opt.step();
    }
    EXPECT_NEAR(p.value[0], 3.0F, 1e-3F);
}

TEST(Optimizer, AdamReducesQuadraticLoss) {
    nn::Parameter p(Tensor({1}, {0.0F}));
    nn::Adam opt({&p}, 0.1F);
    for (int i = 0; i < 300; ++i) {
        p.grad[0] = 2.0F * (p.value[0] - 3.0F);
        opt.step();
    }
    EXPECT_NEAR(p.value[0], 3.0F, 1e-2F);
}

TEST(Trainer, LearnsSyntheticDataset) {
    auto dcfg = data::DatasetConfig::cifar10_like();
    dcfg.train_size = 160;
    dcfg.test_size = 60;
    dcfg.image_size = 16;
    data::SyntheticImageDataset ds(dcfg);

    Rng rng(12);
    nn::Sequential model;
    model.emplace<nn::Conv2d>(3, 8, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    model.emplace<nn::Relu>();
    model.emplace<nn::MaxPool2d>(2, 2);
    model.emplace<nn::Conv2d>(8, 16, ops::ConvSpec{.kernel = 3, .stride = 1, .pad = 1}, rng);
    model.emplace<nn::Relu>();
    model.emplace<nn::MaxPool2d>(2, 2);
    model.emplace<nn::Flatten>();
    model.emplace<nn::Linear>(16 * 4 * 4, 10, rng);

    nn::TrainConfig tcfg;
    tcfg.epochs = 8;
    tcfg.batch_size = 16;
    tcfg.lr = 0.05F;
    const auto report = nn::train_classifier(model, ds, tcfg);
    EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
    EXPECT_GT(report.final_test_accuracy, 0.5);  // 10 classes, chance = 0.1
}

TEST(Trainer, NoiseAtCutDegradesGracefully) {
    auto dcfg = data::DatasetConfig::cifar10_like();
    dcfg.train_size = 120;
    dcfg.test_size = 50;
    dcfg.image_size = 16;
    data::SyntheticImageDataset ds(dcfg);
    nn::ModelConfig mcfg;
    mcfg.width_multiplier = 0.1F;
    mcfg.input_hw = 16;
    nn::Sequential model = nn::make_alexnet(mcfg);
    nn::TrainConfig tcfg;
    tcfg.epochs = 5;
    tcfg.lr = 0.03F;
    (void)nn::train_classifier(model, ds, tcfg);

    const CutPoint cut{.linear_index = 2, .after_relu = true};
    const double clean = nn::evaluate_accuracy_with_noise_at(model, cut, ds.test(), 0.0F, 99);
    const double heavy = nn::evaluate_accuracy_with_noise_at(model, cut, ds.test(), 5.0F, 99);
    EXPECT_GE(clean, heavy);  // extreme noise cannot help
}

TEST(Serialize, SaveLoadRoundTrip) {
    Rng rng(13);
    nn::ModelConfig cfg;
    cfg.width_multiplier = 0.05F;
    nn::Sequential a = nn::make_vgg16(cfg);
    nn::Sequential b = nn::make_vgg16(cfg);
    // Perturb a so the two differ, save a, load into b.
    for (auto* p : a.parameters())
        for (std::int64_t i = 0; i < p->value.numel(); ++i) p->value[i] += 0.01F;
    const std::string path = "/tmp/c2pi_serialize_test.bin";
    nn::save_parameters(a, path);
    nn::load_parameters(b, path);
    const Tensor x = Tensor::uniform({1, 3, 32, 32}, rng, 0.0F, 1.0F);
    EXPECT_TRUE(a.forward(x).allclose(b.forward(x), 1e-6F));
    std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsWrongArchitecture) {
    nn::ModelConfig cfg;
    cfg.width_multiplier = 0.05F;
    nn::Sequential a = nn::make_vgg16(cfg);
    nn::Sequential b = nn::make_alexnet(cfg);
    const std::string path = "/tmp/c2pi_serialize_mismatch.bin";
    nn::save_parameters(a, path);
    EXPECT_THROW(nn::load_parameters(b, path), Error);
    EXPECT_FALSE(nn::try_load_parameters(b, path));
    std::remove(path.c_str());
}

}  // namespace
}  // namespace c2pi
