// Tests for the IDPA attacks: MLA recovers shallow-layer inputs, inverse
// networks build correct block structures and train, DINA's distillation
// machinery runs, and the depth phenomenon the paper exploits holds
// (shallow cuts are easier to invert than deep cuts).

#include <gtest/gtest.h>

#include <cmath>

#include "attack/inverse.hpp"
#include "attack/mla.hpp"
#include "metrics/ssim.hpp"
#include "nn/layers.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"

namespace c2pi::attack {
namespace {

struct AttackFixture {
    data::SyntheticImageDataset dataset = [] {
        auto cfg = data::DatasetConfig::cifar10_like();
        cfg.train_size = 160;
        cfg.test_size = 40;
        cfg.image_size = 16;
        return data::SyntheticImageDataset(cfg);
    }();
    nn::Sequential model = [] {
        nn::ModelConfig cfg;
        cfg.width_multiplier = 0.1F;
        cfg.input_hw = 16;
        return nn::make_alexnet(cfg);
    }();

    AttackFixture() {
        nn::TrainConfig tcfg;
        tcfg.epochs = 4;
        tcfg.lr = 0.03F;
        (void)nn::train_classifier(model, dataset, tcfg);
    }

    InverseConfig fast_inverse_config() const {
        InverseConfig cfg;
        cfg.epochs = 6;
        cfg.train_samples = 128;
        cfg.batch_size = 8;
        return cfg;
    }
};

TEST(NoisedActivation, AddsBoundedNoise) {
    AttackFixture fx;
    Rng rng(1);
    const nn::CutPoint cut{.linear_index = 1, .after_relu = true};
    const auto& img = fx.dataset.test()[0].image;
    const Tensor clean = noised_activation(fx.model, cut, img, 0.0F, rng);
    const Tensor noisy = noised_activation(fx.model, cut, img, 0.2F, rng);
    ASSERT_TRUE(clean.same_shape(noisy));
    float max_diff = 0.0F;
    for (std::int64_t i = 0; i < clean.numel(); ++i)
        max_diff = std::max(max_diff, std::fabs(clean[i] - noisy[i]));
    EXPECT_GT(max_diff, 0.0F);
    EXPECT_LE(max_diff, 0.2F + 1e-5F);
}

TEST(Mla, RecoversShallowActivation) {
    AttackFixture fx;
    Rng rng(2);
    const nn::CutPoint cut{.linear_index = 1, .after_relu = false};
    const auto& img = fx.dataset.test()[0].image;
    const Tensor act = noised_activation(fx.model, cut, img, 0.0F, rng);
    MlaAttack mla(MlaConfig{.iterations = 200, .lr = 0.08F, .seed = 3});
    Tensor guess = mla.recover(fx.model, cut, act);
    guess = guess.reshaped({3, 16, 16});
    // Recovery from the very first conv layer should be quite close.
    EXPECT_GT(metrics::ssim(img, guess), 0.5) << "shallow MLA should succeed";
}

TEST(Mla, DeepCutIsHarderThanShallowCut) {
    AttackFixture fx;
    Rng rng(4);
    const auto& img = fx.dataset.test()[1].image;
    const nn::CutPoint shallow{.linear_index = 1, .after_relu = false};
    const nn::CutPoint deep{.linear_index = 5, .after_relu = true};
    MlaAttack mla(MlaConfig{.iterations = 150, .lr = 0.08F, .seed = 5});
    const Tensor act_s = noised_activation(fx.model, shallow, img, 0.0F, rng);
    const Tensor act_d = noised_activation(fx.model, deep, img, 0.0F, rng);
    const double ssim_s =
        metrics::ssim(img, mla.recover(fx.model, shallow, act_s).reshaped({3, 16, 16}));
    const double ssim_d =
        metrics::ssim(img, mla.recover(fx.model, deep, act_d).reshaped({3, 16, 16}));
    EXPECT_GT(ssim_s, ssim_d);
}

TEST(InverseNet, BuildsOneBlockPerSubBlock) {
    AttackFixture fx;
    InverseNetAttack dina(InverseKind::kDistilled, fx.fast_inverse_config());
    // Cut 3.5 in AlexNet: sub-blocks end at ReLUs 1.5, 2.5, 3.5 -> 3 blocks.
    dina.fit(fx.model, {.linear_index = 3, .after_relu = true}, fx.dataset, 0.0F);
    EXPECT_EQ(dina.num_blocks(), 3U);
}

TEST(InverseNet, CutAtLinearOpAddsPartialBlock) {
    AttackFixture fx;
    InverseNetAttack eina(InverseKind::kResidual, fx.fast_inverse_config());
    // Cut 2 (pre-ReLU): sub-blocks end at ReLU 1.5 and at conv 2 -> 2 blocks.
    eina.fit(fx.model, {.linear_index = 2, .after_relu = false}, fx.dataset, 0.0F);
    EXPECT_EQ(eina.num_blocks(), 2U);
}

TEST(InverseNet, RecoverProducesImageShapedOutput) {
    AttackFixture fx;
    Rng rng(6);
    const nn::CutPoint cut{.linear_index = 2, .after_relu = true};
    InverseNetAttack dina(InverseKind::kDistilled, fx.fast_inverse_config());
    dina.fit(fx.model, cut, fx.dataset, 0.1F);
    const auto& img = fx.dataset.test()[2].image;
    const Tensor act = noised_activation(fx.model, cut, img, 0.1F, rng);
    const Tensor guess = dina.recover(fx.model, cut, act);
    EXPECT_EQ(guess.numel(), img.numel());
    for (std::int64_t i = 0; i < guess.numel(); ++i) {
        EXPECT_GE(guess[i], 0.0F);
        EXPECT_LE(guess[i], 1.0F);
    }
}

TEST(InverseNet, TrainedAttackBeatsUntrainedAtShallowCut) {
    AttackFixture fx;
    const nn::CutPoint cut{.linear_index = 1, .after_relu = true};
    auto cfg = fx.fast_inverse_config();
    InverseNetAttack trained(InverseKind::kDistilled, cfg);
    const auto eval = evaluate_idpa(trained, fx.model, cut, fx.dataset, 8, 0.0F, 77);
    // Inverting one conv+relu block must comfortably beat random noise.
    EXPECT_GT(eval.avg_ssim, 0.35) << "DINA should invert conv1";
    EXPECT_EQ(eval.samples, 8U);
}

TEST(InverseNet, CrossesFlattenBoundaryForFcCuts) {
    AttackFixture fx;
    const nn::CutPoint cut{.linear_index = 6, .after_relu = true};  // first FC
    InverseNetAttack dina(InverseKind::kDistilled, fx.fast_inverse_config());
    Rng rng(8);
    dina.fit(fx.model, cut, fx.dataset, 0.0F);
    const auto& img = fx.dataset.test()[3].image;
    const Tensor act = noised_activation(fx.model, cut, img, 0.0F, rng);
    const Tensor guess = dina.recover(fx.model, cut, act);
    EXPECT_EQ(guess.numel(), img.numel());
}

TEST(InverseNet, DistillationCoefficientsConfigurable) {
    AttackFixture fx;
    auto c2 = fx.fast_inverse_config();
    c2.alpha1 = 1.0F;
    c2.alpha_growth = 1.0F;  // DINA-c2: uniform coefficients
    InverseNetAttack dina_c2(InverseKind::kDistilled, c2);
    const nn::CutPoint cut{.linear_index = 2, .after_relu = true};
    const auto eval = evaluate_idpa(dina_c2, fx.model, cut, fx.dataset, 4, 0.0F, 78);
    EXPECT_GT(eval.avg_ssim, 0.0);  // trains and evaluates without error
}

TEST(DepthPhenomenon, DeepActivationsAreHarderToInvert) {
    // The core observation C2PI relies on (paper Fig. 1/4): average SSIM
    // decays as the cut moves deeper.
    AttackFixture fx;
    auto cfg = fx.fast_inverse_config();
    InverseNetAttack shallow_attack(InverseKind::kDistilled, cfg);
    InverseNetAttack deep_attack(InverseKind::kDistilled, cfg);
    const auto shallow =
        evaluate_idpa(shallow_attack, fx.model, {.linear_index = 1, .after_relu = true},
                      fx.dataset, 8, 0.1F, 79);
    const auto deep = evaluate_idpa(deep_attack, fx.model, {.linear_index = 5, .after_relu = true},
                                    fx.dataset, 8, 0.1F, 79);
    EXPECT_GT(shallow.avg_ssim, deep.avg_ssim);
}

TEST(NoiseDefense, HigherLambdaLowersRecoverySsim) {
    // Fig. 6's mechanism: more share noise -> worse attack.
    AttackFixture fx;
    auto cfg = fx.fast_inverse_config();
    const nn::CutPoint cut{.linear_index = 1, .after_relu = true};
    InverseNetAttack clean_attack(InverseKind::kDistilled, cfg);
    InverseNetAttack noisy_attack(InverseKind::kDistilled, cfg);
    const auto clean = evaluate_idpa(clean_attack, fx.model, cut, fx.dataset, 8, 0.0F, 80);
    const auto noisy = evaluate_idpa(noisy_attack, fx.model, cut, fx.dataset, 8, 2.0F, 80);
    EXPECT_GT(clean.avg_ssim, noisy.avg_ssim);
}

}  // namespace
}  // namespace c2pi::attack
