// Tests for the crypto substrate: ChaCha20 against RFC 8439 vectors,
// SHA-256 against FIPS vectors, SipHash reference vector, secret sharing,
// IKNP OT extension (all flavors) over the threaded channel, and garbled
// circuits (property-tested against plaintext evaluation).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/circuit.hpp"
#include "crypto/garbling.hpp"
#include "crypto/hash.hpp"
#include "crypto/ot.hpp"
#include "crypto/secret_sharing.hpp"
#include "net/runtime.hpp"

namespace c2pi::crypto {
namespace {

// ------------------------------------------------------------------ ChaCha ---

TEST(ChaCha20, Rfc8439KeystreamVector) {
    // RFC 8439 §2.4.2: key 00..1f, nonce low 64 bits zero in our layout
    // differs from the RFC nonce, so instead check the §2.3.2 block
    // function output through a zero-nonce construction determinism and
    // cross-instance reproducibility, plus a known first-block property:
    // the keystream must not be all-zero and must differ across nonces.
    std::uint8_t key[32];
    for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
    ChaCha20Prg a(std::span<const std::uint8_t>(key, 32), 0);
    ChaCha20Prg b(std::span<const std::uint8_t>(key, 32), 0);
    ChaCha20Prg c(std::span<const std::uint8_t>(key, 32), 1);
    std::uint8_t sa[64], sb[64], sc[64];
    a.fill_bytes(sa);
    b.fill_bytes(sb);
    c.fill_bytes(sc);
    EXPECT_EQ(0, std::memcmp(sa, sb, 64));
    EXPECT_NE(0, std::memcmp(sa, sc, 64));
    bool nonzero = false;
    for (const auto v : sa) nonzero |= (v != 0);
    EXPECT_TRUE(nonzero);
}

TEST(ChaCha20, LongStreamMatchesChunkedReads) {
    const Block128 seed{1, 2};
    ChaCha20Prg a(seed);
    ChaCha20Prg b(seed);
    std::vector<std::uint8_t> big(1000);
    a.fill_bytes(big);
    std::vector<std::uint8_t> parts(1000);
    for (std::size_t off = 0; off < 1000; off += 77) {
        const std::size_t take = std::min<std::size_t>(77, 1000 - off);
        b.fill_bytes(std::span<std::uint8_t>(parts.data() + off, take));
    }
    EXPECT_EQ(big, parts);
}

TEST(ChaCha20, BitsAreBalanced) {
    ChaCha20Prg prg(Block128{7, 9});
    const auto bits = prg.next_bits(10000);
    std::size_t ones = 0;
    for (const auto b : bits) {
        ASSERT_LE(b, 1);
        ones += b;
    }
    EXPECT_NEAR(static_cast<double>(ones), 5000.0, 300.0);
}

// ----------------------------------------------------------------- SHA-256 ---

std::string hex(std::span<const std::uint8_t> bytes) {
    static const char* digits = "0123456789abcdef";
    std::string s;
    for (const auto b : bytes) {
        s += digits[b >> 4];
        s += digits[b & 0xF];
    }
    return s;
}

TEST(Sha256, EmptyStringVector) {
    const auto d = Sha256::digest({});
    EXPECT_EQ(hex(d), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
    const std::uint8_t abc[] = {'a', 'b', 'c'};
    EXPECT_EQ(hex(Sha256::digest(abc)),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessageVector) {
    const std::string msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    EXPECT_EQ(hex(Sha256::digest(std::span<const std::uint8_t>(
                  reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()))),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, StreamingMatchesOneShot) {
    std::vector<std::uint8_t> data(300);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 7);
    Sha256 h;
    h.update(std::span<const std::uint8_t>(data.data(), 100));
    h.update(std::span<const std::uint8_t>(data.data() + 100, 200));
    EXPECT_EQ(hex(h.finish()), hex(Sha256::digest(data)));
}

TEST(SipHash, ReferenceVector) {
    // Reference test vector from the SipHash paper: key 000102..0f,
    // message 00 01 02 .. 0e (15 bytes) -> 0xa129ca6149be45e5.
    Block128 key;
    std::uint8_t kb[16];
    for (int i = 0; i < 16; ++i) kb[i] = static_cast<std::uint8_t>(i);
    key = Block128::from_bytes(kb);
    std::uint8_t msg[15];
    for (int i = 0; i < 15; ++i) msg[i] = static_cast<std::uint8_t>(i);
    EXPECT_EQ(siphash24(key, msg), 0xa129ca6149be45e5ULL);
}

TEST(CrHash, TweakSeparatesDomains) {
    const Block128 x{123, 456};
    EXPECT_NE(cr_hash(0, x), cr_hash(1, x));
    EXPECT_EQ(cr_hash(5, x), cr_hash(5, x));
}

// ---------------------------------------------------------- secret sharing ---

TEST(SecretSharing, ReconstructRecoversValues) {
    ChaCha20Prg prg(Block128{1, 1});
    std::vector<Ring> values{0, 1, ~0ULL, 0x123456789ABCDEFULL};
    const auto shares = share_additive(values, prg);
    const auto back = reconstruct_additive(shares.share0, shares.share1);
    EXPECT_EQ(back, values);
}

TEST(SecretSharing, SharesLookUniform) {
    ChaCha20Prg prg(Block128{2, 2});
    std::vector<Ring> values(1000, 42);
    const auto shares = share_additive(values, prg);
    // Share0 is raw PRG output: mean of top bit should be ~1/2.
    std::size_t high = 0;
    for (const auto s : shares.share0) high += (s >> 63);
    EXPECT_NEAR(static_cast<double>(high), 500.0, 100.0);
}

TEST(SecretSharing, BitSharesXorToValue) {
    ChaCha20Prg prg(Block128{3, 3});
    std::vector<std::uint8_t> bits{0, 1, 1, 0, 1};
    const auto sh = share_bits(bits, prg);
    for (std::size_t i = 0; i < bits.size(); ++i)
        EXPECT_EQ(bits[i], sh.share0[i] ^ sh.share1[i]);
}

// -------------------------------------------------------------------- OT ---

struct OtFixture {
    net::DuplexChannel channel;
    OtSetupPair setup = dealer_base_ots(Block128{0xAB, 0xCD});
};

TEST(OtExtension, RandomOtCorrelation) {
    OtFixture fx;
    const std::size_t n = 300;
    ChaCha20Prg choice_prg(Block128{9, 9});
    const auto choices = choice_prg.next_bits(n);

    RotSenderOutput sender_out;
    RotReceiverOutput receiver_out;
    net::run_two_party(
        fx.channel,
        [&](net::Transport& t) {
            IknpSender ext(fx.setup.sender);
            sender_out = ext.extend(t, n);
        },
        [&](net::Transport& t) {
            IknpReceiver ext(fx.setup.receiver);
            receiver_out = ext.extend(t, choices);
        });

    for (std::size_t j = 0; j < n; ++j) {
        const Block128& expected = choices[j] ? sender_out.m1[j] : sender_out.m0[j];
        EXPECT_EQ(receiver_out.m[j], expected) << "OT " << j;
        EXPECT_NE(sender_out.m0[j], sender_out.m1[j]);
    }
}

TEST(OtExtension, SequentialExtensionsDiffer) {
    OtFixture fx;
    std::vector<std::uint8_t> choices(16, 0);
    RotSenderOutput s1, s2;
    RotReceiverOutput r1, r2;
    net::run_two_party(
        fx.channel,
        [&](net::Transport& t) {
            IknpSender ext(fx.setup.sender);
            s1 = ext.extend(t, 16);
            s2 = ext.extend(t, 16);
        },
        [&](net::Transport& t) {
            IknpReceiver ext(fx.setup.receiver);
            r1 = ext.extend(t, choices);
            r2 = ext.extend(t, choices);
        });
    EXPECT_EQ(r1.m[0], s1.m0[0]);
    EXPECT_EQ(r2.m[0], s2.m0[0]);
    EXPECT_NE(s1.m0[0], s2.m0[0]);  // tweak advanced
}

TEST(ChosenOt, TransfersSelectedBlocks) {
    OtFixture fx;
    const std::size_t n = 64;
    std::vector<Block128> m0(n), m1(n);
    for (std::size_t i = 0; i < n; ++i) {
        m0[i] = {i, 2 * i};
        m1[i] = {1000 + i, 7 * i};
    }
    std::vector<std::uint8_t> choices(n);
    for (std::size_t i = 0; i < n; ++i) choices[i] = i % 2;
    std::vector<Block128> got;
    net::run_two_party(
        fx.channel,
        [&](net::Transport& t) {
            IknpSender ext(fx.setup.sender);
            ot_send_blocks(t, ext, m0, m1);
        },
        [&](net::Transport& t) {
            IknpReceiver ext(fx.setup.receiver);
            got = ot_recv_blocks(t, ext, choices);
        });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(got[i], choices[i] ? m1[i] : m0[i]);
}

TEST(CorrelatedOt, AdditiveCorrelationHolds) {
    OtFixture fx;
    const std::size_t n = 128;
    std::vector<Ring> deltas(n);
    for (std::size_t i = 0; i < n; ++i) deltas[i] = 0x1111 * (i + 1);
    std::vector<std::uint8_t> choices(n);
    for (std::size_t i = 0; i < n; ++i) choices[i] = (i * 3) % 2;
    std::vector<Ring> sender_share, receiver_share;
    net::run_two_party(
        fx.channel,
        [&](net::Transport& t) {
            IknpSender ext(fx.setup.sender);
            sender_share = cot_send(t, ext, deltas);
        },
        [&](net::Transport& t) {
            IknpReceiver ext(fx.setup.receiver);
            receiver_share = cot_recv(t, ext, choices);
        });
    for (std::size_t i = 0; i < n; ++i) {
        const Ring want = sender_share[i] + (choices[i] ? deltas[i] : 0);
        EXPECT_EQ(receiver_share[i], want) << i;
    }
}

TEST(OneOfNOt, DeliversChosenByte) {
    OtFixture fx;
    const std::size_t groups = 50, options = 16;
    std::vector<std::uint8_t> messages(groups * options);
    for (std::size_t i = 0; i < messages.size(); ++i)
        messages[i] = static_cast<std::uint8_t>((i * 37) & 0xFF);
    std::vector<std::uint16_t> indices(groups);
    for (std::size_t g = 0; g < groups; ++g) indices[g] = static_cast<std::uint16_t>((g * 7) % options);
    std::vector<std::uint8_t> got;
    net::run_two_party(
        fx.channel,
        [&](net::Transport& t) {
            IknpSender ext(fx.setup.sender);
            ot_1_of_n_send(t, ext, messages, groups, options);
        },
        [&](net::Transport& t) {
            IknpReceiver ext(fx.setup.receiver);
            got = ot_1_of_n_recv(t, ext, indices, options);
        });
    for (std::size_t g = 0; g < groups; ++g) EXPECT_EQ(got[g], messages[g * options + indices[g]]);
}

TEST(BitTriples, SatisfyAndRelation) {
    OtFixture fx;
    // Two independent setups: one for each sender direction.
    const auto setup_b = dealer_base_ots(Block128{0x11, 0x22});
    const std::size_t n = 500;
    BitTriples t0, t1;
    net::run_two_party(
        fx.channel,
        [&](net::Transport& t) {
            IknpSender se(fx.setup.sender);
            IknpReceiver re(setup_b.receiver);
            ChaCha20Prg prg(Block128{5, 0});
            t0 = bit_triples_party(t, se, re, n, prg);
        },
        [&](net::Transport& t) {
            IknpSender se(setup_b.sender);
            IknpReceiver re(fx.setup.receiver);
            ChaCha20Prg prg(Block128{6, 0});
            t1 = bit_triples_party(t, se, re, n, prg);
        });
    std::size_t ones_a = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t a = t0.a[i] ^ t1.a[i];
        const std::uint8_t b = t0.b[i] ^ t1.b[i];
        const std::uint8_t c = t0.c[i] ^ t1.c[i];
        EXPECT_EQ(c, a & b) << "triple " << i;
        ones_a += a;
    }
    EXPECT_GT(ones_a, n / 4);  // a-bits are actually random
    EXPECT_LT(ones_a, 3 * n / 4);
}

TEST(OtDealer, SetupTrafficCharged) {
    EXPECT_EQ(OtSetupPair::setup_traffic_bytes(), 128U * 3 * 16);
}

// ----------------------------------------------------------- circuits & GC ---

TEST(Circuit, PlainAdderMatchesArithmetic) {
    CircuitBuilder b;
    const Word x = b.add_garbler_word(64);
    const Word y = b.add_evaluator_word(64);
    b.mark_output_word(b.ripple_add(x, y));
    const Circuit c = b.build();
    c2pi::Rng rng(21);
    for (int trial = 0; trial < 20; ++trial) {
        const std::uint64_t xv = rng.next_u64();
        const std::uint64_t yv = rng.next_u64();
        const auto out = evaluate_plain(c, to_bits(xv, 64), to_bits(yv, 64));
        EXPECT_EQ(from_bits(out), xv + yv);
    }
}

TEST(Circuit, PlainSubtractorMatchesArithmetic) {
    CircuitBuilder b;
    const Word x = b.add_garbler_word(64);
    const Word y = b.add_evaluator_word(64);
    b.mark_output_word(b.ripple_sub(x, y));
    const Circuit c = b.build();
    c2pi::Rng rng(22);
    for (int trial = 0; trial < 20; ++trial) {
        const std::uint64_t xv = rng.next_u64();
        const std::uint64_t yv = rng.next_u64();
        const auto out = evaluate_plain(c, to_bits(xv, 64), to_bits(yv, 64));
        EXPECT_EQ(from_bits(out), xv - yv);
    }
}

TEST(Circuit, ReluCircuitComputesReluOfSharedValue) {
    const Circuit c = build_relu_circuit(64);
    c2pi::Rng rng(23);
    for (int trial = 0; trial < 30; ++trial) {
        const std::int64_t value = static_cast<std::int64_t>(rng.next_u64()) >> 8;
        const std::uint64_t x1 = rng.next_u64();
        const std::uint64_t x0 = static_cast<std::uint64_t>(value) - x1;
        const std::uint64_t r = rng.next_u64();
        std::vector<std::uint8_t> gb = to_bits(x0, 64);
        const auto neg_r = to_bits(~r + 1, 64);
        gb.insert(gb.end(), neg_r.begin(), neg_r.end());
        const auto out = evaluate_plain(c, gb, to_bits(x1, 64));
        const std::uint64_t expected =
            (value > 0 ? static_cast<std::uint64_t>(value) : 0) - r;
        EXPECT_EQ(from_bits(out), expected) << "value " << value;
    }
}

TEST(Circuit, MaxCircuitComputesMaxOfSharedValues) {
    const int k = 4;
    const Circuit c = build_max_circuit(64, k);
    c2pi::Rng rng(24);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::int64_t> values(k);
        std::vector<std::uint8_t> gb, eb;
        for (int i = 0; i < k; ++i) {
            values[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(rng.next_u64()) >> 8;
            const std::uint64_t x1 = rng.next_u64();
            const std::uint64_t x0 =
                static_cast<std::uint64_t>(values[static_cast<std::size_t>(i)]) - x1;
            const auto bits0 = to_bits(x0, 64);
            const auto bits1 = to_bits(x1, 64);
            gb.insert(gb.end(), bits0.begin(), bits0.end());
            eb.insert(eb.end(), bits1.begin(), bits1.end());
        }
        const std::uint64_t r = rng.next_u64();
        const auto neg_r = to_bits(~r + 1, 64);
        gb.insert(gb.end(), neg_r.begin(), neg_r.end());
        const auto out = evaluate_plain(c, gb, eb);
        const std::int64_t mx = *std::max_element(values.begin(), values.end());
        EXPECT_EQ(from_bits(out), static_cast<std::uint64_t>(mx) - r);
    }
}

TEST(Garbling, MatchesPlainEvaluationOnReluCircuit) {
    const Circuit c = build_relu_circuit(32);
    ChaCha20Prg grg(Block128{77, 1});
    c2pi::Rng rng(25);
    for (int trial = 0; trial < 10; ++trial) {
        const Garbling g = garble(c, grg);
        std::vector<std::uint8_t> gbits(static_cast<std::size_t>(c.num_garbler_inputs));
        std::vector<std::uint8_t> ebits(static_cast<std::size_t>(c.num_evaluator_inputs));
        for (auto& bit : gbits) bit = static_cast<std::uint8_t>(rng.next_u64() & 1);
        for (auto& bit : ebits) bit = static_cast<std::uint8_t>(rng.next_u64() & 1);

        std::vector<Block128> ga, ea;
        for (std::size_t i = 0; i < gbits.size(); ++i) ga.push_back(g.garbler_label(i, gbits[i]));
        for (std::size_t i = 0; i < ebits.size(); ++i) ea.push_back(g.evaluator_label(i, ebits[i]));

        const auto garbled_out = evaluate_garbled(c, g.tables, ga, ea, g.output_decode);
        const auto plain_out = evaluate_plain(c, gbits, ebits);
        EXPECT_EQ(garbled_out, plain_out) << "trial " << trial;
    }
}

TEST(Garbling, TableSizeIsTwoBlocksPerAnd) {
    const Circuit c = build_relu_circuit(64);
    ChaCha20Prg prg(Block128{88, 2});
    const Garbling g = garble(c, prg);
    EXPECT_EQ(g.tables.size(), c.and_count() * 2);
    EXPECT_TRUE(g.delta.colour());
}

TEST(Garbling, AndGateTruthTableExhaustive) {
    CircuitBuilder b;
    const auto x = b.add_garbler_input();
    const auto y = b.add_evaluator_input();
    b.mark_output(b.make_and(x, y));
    const Circuit c = b.build();
    ChaCha20Prg prg(Block128{99, 3});
    for (int xv = 0; xv <= 1; ++xv) {
        for (int yv = 0; yv <= 1; ++yv) {
            const Garbling g = garble(c, prg);
            const std::vector<Block128> ga{g.garbler_label(0, xv != 0)};
            const std::vector<Block128> ea{g.evaluator_label(0, yv != 0)};
            const auto out = evaluate_garbled(c, g.tables, ga, ea, g.output_decode);
            EXPECT_EQ(out[0], xv & yv) << xv << "," << yv;
        }
    }
}

TEST(Garbling, XorAndNotAreFree) {
    CircuitBuilder b;
    const auto x = b.add_garbler_input();
    const auto y = b.add_evaluator_input();
    b.mark_output(b.make_not(b.make_xor(x, y)));
    const Circuit c = b.build();
    ChaCha20Prg prg(Block128{11, 4});
    const Garbling g = garble(c, prg);
    EXPECT_TRUE(g.tables.empty());
    for (int xv = 0; xv <= 1; ++xv)
        for (int yv = 0; yv <= 1; ++yv) {
            const std::vector<Block128> ga{g.garbler_label(0, xv != 0)};
            const std::vector<Block128> ea{g.evaluator_label(0, yv != 0)};
            const auto out = evaluate_garbled(c, g.tables, ga, ea, g.output_decode);
            EXPECT_EQ(out[0], (xv ^ yv) ^ 1);
        }
}

}  // namespace
}  // namespace c2pi::crypto
