// Table II reproduction: latency (LAN/WAN, modeled from measured compute +
// byte-exact traffic + message flights) and communication of Delphi- and
// Cheetah-style full PI vs C2PI at sigma = 0.2 / 0.3, for VGG16 and VGG19
// on CIFAR-10-like data. Expected shape: C2PI speeds both backends up
// (more at sigma=0.3 / earlier boundaries), saves communication, and the
// WAN gap exceeds the LAN gap.

#include "bench/common.hpp"

namespace {

using namespace c2pi;

struct Measurement {
    double lan = 0.0, wan = 0.0, comm_mb = 0.0, wall = 0.0;
};

Measurement measure(const pi::CompiledModel& compiled, const pi::SessionConfig& config,
                    const Tensor& input) {
    const auto res = pi::run_private_inference(compiled, config, input);
    Measurement m;
    m.lan = res.stats.latency_seconds(net::NetworkModel::lan());
    m.wan = res.stats.latency_seconds(net::NetworkModel::wan());
    m.comm_mb = static_cast<double>(res.stats.total_bytes()) / (1024.0 * 1024.0);
    m.wall = res.stats.wall_seconds;
    return m;
}

void print_row(const char* config, const Measurement& m, const Measurement& base) {
    std::printf("  %-16s  LAN %8.2fs (%5.2fx)   WAN %8.2fs (%5.2fx)   comm %9.2f MB (%5.2fx)\n",
                config, m.lan, base.lan / m.lan, m.wan, base.wan / m.wan, m.comm_mb,
                base.comm_mb / m.comm_mb);
    std::fflush(stdout);
}

}  // namespace

int main() {
    bench::print_banner(
        "Table II — full PI vs C2PI: latency (LAN/WAN) and communication", "Table II");
    // Per-op timing rows (model/backend/config) land in C2PI_BENCH_JSON
    // when set, so the perf trajectory is machine-diffable per PR. Note
    // the schema is BenchJsonWriter's {bench, rows} shape — NOT the
    // google-benchmark native format micro_primitives writes to the same
    // env var; point each binary at its own path.
    bench::BenchJsonWriter json("table2_performance");
    auto dataset = bench::make_dataset("CIFAR-10");
    const Tensor input = dataset.test()[0].image.reshaped(
        {1, 3, bench::scale().image_size, bench::scale().image_size});

    for (const std::string model_name : {"vgg16", "vgg19"}) {
        auto model = bench::load_or_train(model_name, "CIFAR-10", dataset);
        std::printf("\n=== %s ===\n", model_name.c_str());
        const double sigmas[] = {0.2, 0.3};
        const auto boundaries = bench::cached_boundary_search(
            model_name, "CIFAR-10", model, dataset, sigmas, 0.1F, 0.025,
            /*include_half_points=*/false);
        const nn::CutPoint b02 = boundaries[0].boundary;
        const nn::CutPoint b03 = boundaries[1].boundary;
        std::printf("  boundaries: sigma=0.2 -> conv %.1f, sigma=0.3 -> conv %.1f\n",
                    b02.as_decimal(), b03.as_decimal());

        // Compile ONCE per boundary; the artifacts are backend-agnostic and
        // serve both the Delphi and Cheetah sessions below.
        const Shape chw{3, bench::scale().image_size, bench::scale().image_size};
        const std::size_t ring = bench::scale().he_ring_degree;
        const pi::CompiledModel full(model, {.input_chw = chw, .he_ring_degree = ring});
        const pi::CompiledModel c2pi02(model,
                                       {.input_chw = chw, .boundary = b02, .he_ring_degree = ring});
        const pi::CompiledModel c2pi03(model,
                                       {.input_chw = chw, .boundary = b03, .he_ring_degree = ring});

        for (const pi::PiBackend backend : {pi::PiBackend::kDelphi, pi::PiBackend::kCheetah}) {
            std::printf(" %s:\n", pi::backend_name(backend));
            const pi::SessionConfig full_cfg{.backend = backend};
            const pi::SessionConfig cut_cfg{.backend = backend, .noise_lambda = 0.1F};

            const auto record = [&](const char* config, const Measurement& m,
                                    const Measurement& base) {
                print_row(config, m, base);
                json.add_row(model_name + "/" + pi::backend_name(backend) + "/" + config,
                             {{"lan_s", m.lan},
                              {"wan_s", m.wan},
                              {"comm_mb", m.comm_mb},
                              {"wall_s", m.wall}});
            };
            const Measurement base = measure(full, full_cfg, input);
            record("full PI", base, base);
            record("C2PI (s=0.2)", measure(c2pi02, cut_cfg, input), base);
            record("C2PI (s=0.3)", measure(c2pi03, cut_cfg, input), base);
        }
    }
    // Serving-only residual-model row (BM_ResNetServerOnline): resnet9
    // through the Graph IR with the first residual block — skip-add
    // included — inside the crypto prefix. Untrained weights and a fixed
    // boundary: traffic and latency are weight-independent, and the
    // boundary-search machinery is already covered by the rows above.
    {
        std::printf("\n=== resnet9 (serving only) ===\n");
        nn::ModelConfig mcfg;
        mcfg.input_hw = bench::scale().image_size;
        mcfg.width_multiplier = bench::scale().width_multiplier;
        const nn::Graph resnet = nn::make_resnet9(mcfg);
        const Shape chw{3, bench::scale().image_size, bench::scale().image_size};
        const pi::CompiledModel compiled(
            resnet, {.input_chw = chw,
                     .boundary = nn::CutPoint{.linear_index = 5, .after_relu = false},
                     .he_ring_degree = bench::scale().he_ring_degree});
        for (const pi::PiBackend backend : {pi::PiBackend::kDelphi, pi::PiBackend::kCheetah}) {
            const pi::SessionConfig cfg{.backend = backend};
            const Measurement m = measure(compiled, cfg, input);
            print_row("BM_ResNetServerOnline", m, m);
            json.add_row(std::string("resnet9/") + pi::backend_name(backend) +
                             "/BM_ResNetServerOnline",
                         {{"lan_s", m.lan}, {"wan_s", m.wan}, {"comm_mb", m.comm_mb},
                          {"wall_s", m.wall}});
        }
    }

    bench::print_rule();
    std::printf(
        "Paper: C2PI speeds Delphi up to 2.62x/3.88x (LAN/WAN) and Cheetah up to\n"
        "1.51x/1.82x, saving up to 2.75x communication; sigma=0.3 (earlier boundary)\n"
        "improves more than sigma=0.2. Expect the same ordering at this scale.\n");
    return 0;
}
