// Fig. 7 reproduction: the accuracy cost of the noise defense. Uniform
// noise of magnitude lambda is injected at each conv layer's output and
// the remaining network completes inference; accuracy degrades with
// lambda, motivating the paper's choice of lambda = 0.1.

#include "bench/common.hpp"

int main() {
    using namespace c2pi;
    bench::print_banner("Fig. 7 — noise magnitude vs inference accuracy (VGG16)", "Figure 7");
    const float lambdas[] = {0.0F, 0.1F, 0.2F, 0.3F, 0.4F, 0.5F};

    for (const std::string ds_kind : {"CIFAR-10", "CIFAR-100"}) {
        auto dataset = bench::make_dataset(ds_kind);
        double baseline = 0.0;
        auto model = bench::load_or_train("vgg16", ds_kind, dataset, &baseline);
        const std::span<const data::Sample> subset(
            dataset.test().data(),
            std::min(bench::scale().accuracy_samples, dataset.test().size()));

        std::printf("\nVGG16 / %s-like  baseline accuracy %.2f%%  (rows = conv id)\n",
                    ds_kind.c_str(), 100.0 * baseline);
        std::printf("%8s", "conv id");
        for (const float l : lambdas) std::printf("  l=%4.1f", l);
        std::printf("\n");
        for (const auto& cut : bench::conv_id_cuts(model)) {
            std::printf("%8lld", static_cast<long long>(cut.linear_index));
            for (const float lambda : lambdas) {
                const double acc = nn::evaluate_accuracy_with_noise_at(model, cut, subset, lambda,
                                                                       404 + cut.linear_index);
                std::printf("  %5.1f%%", 100.0 * acc);
            }
            std::printf("\n");
            std::fflush(stdout);
        }
    }
    bench::print_rule();
    std::printf("Paper: accuracy decays as lambda grows, most sharply when noise is injected\n"
                "at early layers; lambda=0.1 keeps accuracy near baseline.\n");
    return 0;
}
