// Fig. 8 reproduction: the full boundary search (Algorithm 1, sigma=0.3,
// lambda=0.1) with DINA on AlexNet/VGG16/VGG19 x CIFAR-10/100-like.
// Prints the phase-1 SSIM sweep, the phase-2 accuracy checks and the
// returned boundary per combination.

#include "bench/common.hpp"

int main() {
    using namespace c2pi;
    bench::print_banner("Fig. 8 — Algorithm 1 boundary search with DINA (sigma=0.3)", "Figure 8");

    for (const std::string ds_kind : {"CIFAR-10", "CIFAR-100"}) {
        for (const std::string model_name : {"alexnet", "vgg16", "vgg19"}) {
            auto dataset = bench::make_dataset(ds_kind);
            double baseline = 0.0;
            auto model = bench::load_or_train(model_name, ds_kind, dataset, &baseline);

            const double sigmas[] = {0.3};
            const auto result =
                bench::cached_boundary_search(model_name, ds_kind, model, dataset, sigmas,
                                              /*lambda=*/0.1F, /*max_accuracy_drop=*/0.025,
                                              /*include_half_points=*/false)[0];

            std::printf("\n%s / %s-like   baseline acc %.2f%%\n", model_name.c_str(),
                        ds_kind.c_str(), 100.0 * baseline);
            std::printf("  phase 1 (tail->head SSIM sweep):");
            for (const auto& probe : result.ssim_sweep)
                std::printf("  conv %.1f: %.3f", probe.cut.as_decimal(), probe.avg_ssim);
            std::printf("\n  phase 2 (noised accuracy checks):");
            for (const auto& probe : result.accuracy_sweep)
                std::printf("  conv %.1f: %.1f%%", probe.cut.as_decimal(),
                            100.0 * probe.noised_accuracy);
            std::printf("\n  => boundary conv id: %.1f  (accuracy %.2f%%)\n",
                        result.boundary.as_decimal(), 100.0 * result.boundary_accuracy);
            std::fflush(stdout);
        }
    }
    bench::print_rule();
    std::printf("Paper boundaries (full-width, real CIFAR): AlexNet 4/5, VGG16 9/10,\n"
                "VGG19 9/9 for CIFAR-10/CIFAR-100 respectively.\n");
    return 0;
}
