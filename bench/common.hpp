#pragma once

/// \file common.hpp
/// Shared infrastructure for the paper-reproduction benches: experiment
/// scale (env C2PI_FAST=1 shrinks everything for smoke runs), dataset and
/// model factories with on-disk caching of trained weights, attack
/// factories, and result-table printing.
///
/// Scale note (DESIGN.md §4, substitutions 2 & 6): models keep the paper's
/// exact topology at width multiplier 0.125 on 32x32 synthetic inputs;
/// attack/training budgets are sized for a 2-core CPU box.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "attack/inverse.hpp"
#include "attack/mla.hpp"
#include "nn/models.hpp"
#include "nn/zoo.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "pi/c2pi.hpp"

namespace c2pi::bench {

struct Scale {
    // dataset / model
    std::int64_t image_size = 32;
    float width_multiplier = 0.125F;
    std::size_t train_size = 640;
    std::size_t test_size = 256;
    int train_epochs = 14;
    // attacks
    int attack_epochs = 3;
    std::size_t attack_train_samples = 96;
    std::size_t attack_eval_samples = 6;
    int mla_iterations = 80;
    // engines
    std::size_t he_ring_degree = 4096;
    std::size_t accuracy_samples = 192;
};

[[nodiscard]] inline Scale scale() {
    Scale s;
    if (const char* fast = std::getenv("C2PI_FAST"); fast != nullptr && fast[0] == '1') {
        s.train_size = 256;
        s.test_size = 96;
        s.train_epochs = 4;
        s.attack_epochs = 2;
        s.attack_train_samples = 48;
        s.attack_eval_samples = 4;
        s.mla_iterations = 60;
        s.he_ring_degree = 2048;
        s.accuracy_samples = 64;
    }
    return s;
}

[[nodiscard]] inline data::SyntheticImageDataset make_dataset(const std::string& kind) {
    const Scale s = scale();
    auto cfg = kind == "CIFAR-100" ? data::DatasetConfig::cifar100_like()
                                   : data::DatasetConfig::cifar10_like();
    cfg.image_size = s.image_size;
    cfg.train_size = static_cast<std::int64_t>(s.train_size);
    cfg.test_size = static_cast<std::int64_t>(s.test_size);
    return data::SyntheticImageDataset(cfg);
}

/// Train (or load from bench_cache/) one model on one dataset; reports
/// test accuracy through `test_accuracy` when non-null.
[[nodiscard]] inline nn::Graph load_or_train(const std::string& model_name,
                                                  const std::string& dataset_kind,
                                                  const data::SyntheticImageDataset& dataset,
                                                  double* test_accuracy = nullptr) {
    const Scale s = scale();
    nn::ModelConfig mcfg;
    mcfg.num_classes = dataset.config().num_classes;
    mcfg.input_hw = s.image_size;
    mcfg.width_multiplier = s.width_multiplier;
    nn::Graph model = nn::zoo::build(model_name, mcfg);

    (void)std::system("mkdir -p /root/repo/bench_cache");
    char path[256];
    std::snprintf(path, sizeof(path), "/root/repo/bench_cache/%s_%s_w%.3f_hw%lld_e%d.bin",
                  model_name.c_str(), dataset_kind.c_str(), s.width_multiplier,
                  static_cast<long long>(s.image_size), s.train_epochs);
    if (!nn::try_load_parameters(model, path)) {
        std::printf("[setup] training %s on %s ...\n", model_name.c_str(), dataset_kind.c_str());
        std::fflush(stdout);
        nn::TrainConfig tcfg;
        tcfg.batch_size = 32;
        // Per-family recipes: plain VGG without BN is sensitive to the
        // lr/momentum pairing, and the 19-layer variant needs a gentler
        // rate with a longer schedule to start descending.
        tcfg.epochs = model_name == "vgg19" ? 2 * s.train_epochs + 8 : s.train_epochs;
        tcfg.lr = model_name == "vgg19" ? 0.005F : 0.01F;
        tcfg.momentum = model_name == "alexnet" ? 0.9F : 0.95F;
        (void)nn::train_classifier(model, dataset, tcfg);
        nn::save_parameters(model, path);
    }
    if (test_accuracy != nullptr) *test_accuracy = nn::evaluate_accuracy(model, dataset.test());
    return model;
}

/// IDPA factory by paper name: "MLA", "INA", "EINA", "DINA" (= DINA-c1)
/// or "DINA-c2" (uniform coefficients, Fig. 5 ablation).
[[nodiscard]] inline attack::IdpaFactory make_attack_factory(const std::string& name) {
    const Scale s = scale();
    if (name == "MLA") {
        return [s] {
            return std::make_unique<attack::MlaAttack>(
                attack::MlaConfig{.iterations = s.mla_iterations, .lr = 0.06F, .seed = 11});
        };
    }
    attack::InverseConfig cfg;
    cfg.epochs = s.attack_epochs;
    cfg.train_samples = s.attack_train_samples;
    cfg.batch_size = 8;
    if (name == "DINA-c2") {
        cfg.alpha1 = 1.0F;
        cfg.alpha_growth = 1.0F;
    }
    const attack::InverseKind kind = name == "INA" ? attack::InverseKind::kPlain
                                   : name == "EINA" ? attack::InverseKind::kResidual
                                                    : attack::InverseKind::kDistilled;
    return [kind, cfg] { return std::make_unique<attack::InverseNetAttack>(kind, cfg); };
}

/// Integer conv-id cut points 1..n-1 (the x-axis of Figs. 1/4/5/6/7/8).
[[nodiscard]] inline std::vector<nn::CutPoint> conv_id_cuts(const nn::Graph& model) {
    std::vector<nn::CutPoint> cuts;
    for (std::int64_t i = 1; i < model.num_linear_ops(); ++i)
        cuts.push_back({.linear_index = i, .after_relu = false});
    return cuts;
}

/// Memoized DINA evaluation: Algorithm-1-style sweeps appear in Fig. 8,
/// Table I and Table II; the underlying (model, dataset, cut, lambda)
/// SSIM values are deterministic, so they are cached in bench_cache/ and
/// shared across bench binaries.
[[nodiscard]] inline double cached_dina_ssim(const std::string& model_name,
                                             const std::string& ds_kind, nn::Graph& model,
                                             const data::SyntheticImageDataset& dataset,
                                             const nn::CutPoint& cut, float lambda) {
    const Scale s = scale();
    char path[320];
    std::snprintf(path, sizeof(path),
                  "/root/repo/bench_cache/ssim_%s_%s_cut%.1f_l%.2f_e%d_n%zu_v%zu.txt",
                  model_name.c_str(), ds_kind.c_str(), cut.as_decimal(), lambda, s.attack_epochs,
                  s.attack_train_samples, s.attack_eval_samples);
    if (FILE* f = std::fopen(path, "r"); f != nullptr) {
        double value = 0.0;
        const int got = std::fscanf(f, "%lf", &value);
        std::fclose(f);
        if (got == 1) return value;
    }
    auto attack = make_attack_factory("DINA")();
    const auto eval = attack::evaluate_idpa(*attack, model, cut, dataset,
                                            scale().attack_eval_samples, lambda,
                                            /*seed=*/101 + static_cast<std::size_t>(cut.linear_index));
    (void)std::system("mkdir -p /root/repo/bench_cache");
    if (FILE* f = std::fopen(path, "w"); f != nullptr) {
        std::fprintf(f, "%.6f\n", eval.avg_ssim);
        std::fclose(f);
    }
    return eval.avg_ssim;
}

/// Algorithm 1 over the cached DINA SSIM values, for several thresholds
/// at once (one tail-to-head sweep serves all sigmas). Returns one
/// BoundaryResult per sigma, in order.
[[nodiscard]] inline std::vector<pi::BoundaryResult> cached_boundary_search(
    const std::string& model_name, const std::string& ds_kind, nn::Graph& model,
    const data::SyntheticImageDataset& dataset, std::span<const double> sigmas, float lambda,
    double max_accuracy_drop, bool include_half_points) {
    const auto cuts = pi::candidate_cuts(model, include_half_points);
    const std::span<const data::Sample> subset(
        dataset.test().data(), std::min(scale().accuracy_samples, dataset.test().size()));
    const double baseline = nn::evaluate_accuracy(model, subset);
    const double sigma_max = *std::max_element(sigmas.begin(), sigmas.end());

    // Phase 1 (shared): sweep tail -> head until the strongest threshold
    // is met; record every probe.
    std::vector<pi::SsimProbe> sweep;
    for (std::int64_t idx = static_cast<std::int64_t>(cuts.size()) - 1; idx >= 0; --idx) {
        const auto& cut = cuts[static_cast<std::size_t>(idx)];
        const double ssim = cached_dina_ssim(model_name, ds_kind, model, dataset, cut, lambda);
        sweep.push_back({cut, ssim});
        if (ssim >= sigma_max) break;
    }

    std::vector<pi::BoundaryResult> results;
    for (const double sigma : sigmas) {
        pi::BoundaryResult r;
        r.baseline_accuracy = baseline;
        r.ssim_sweep = sweep;
        // First success (from the tail) for this sigma.
        std::int64_t boundary_idx = 0;
        for (const auto& probe : sweep) {
            if (probe.avg_ssim >= sigma) {
                const auto it = std::find_if(cuts.begin(), cuts.end(),
                                             [&](const nn::CutPoint& c) { return c == probe.cut; });
                boundary_idx = std::min<std::int64_t>(
                    std::distance(cuts.begin(), it) + 1,
                    static_cast<std::int64_t>(cuts.size()) - 1);
                break;
            }
        }
        // Phase 2: push later until accuracy is within the drop budget.
        const double target = baseline - max_accuracy_drop;
        r.boundary = cuts.back();
        r.boundary_accuracy = baseline;
        for (; boundary_idx < static_cast<std::int64_t>(cuts.size()); ++boundary_idx) {
            const auto& cut = cuts[static_cast<std::size_t>(boundary_idx)];
            const double acc =
                nn::evaluate_accuracy_with_noise_at(model, cut, subset, lambda, 0xACC);
            r.accuracy_sweep.push_back({cut, acc});
            if (acc >= target) {
                r.boundary = cut;
                r.boundary_accuracy = acc;
                break;
            }
        }
        results.push_back(std::move(r));
    }
    return results;
}

/// Machine-readable bench output: when C2PI_BENCH_JSON=<path> is set,
/// collected rows are written to <path> as {"bench": ..., "rows": [...]}
/// at destruction. Each row is a flat name -> number map; the schema is
/// deliberately tiny so CI can diff trajectories across PRs with jq.
class BenchJsonWriter {
public:
    explicit BenchJsonWriter(std::string bench_name) : bench_(std::move(bench_name)) {
        if (const char* p = std::getenv("C2PI_BENCH_JSON"); p != nullptr && p[0] != '\0')
            path_ = p;
    }

    [[nodiscard]] bool enabled() const { return !path_.empty(); }

    void add_row(const std::string& name,
                 std::initializer_list<std::pair<const char*, double>> fields) {
        if (!enabled()) return;
        std::string row = "    {\"name\": \"" + name + "\"";
        char buf[64];
        for (const auto& [key, value] : fields) {
            std::snprintf(buf, sizeof(buf), ", \"%s\": %.6g", key, value);
            row += buf;
        }
        row += "}";
        rows_.push_back(std::move(row));
    }

    ~BenchJsonWriter() {
        if (!enabled() || rows_.empty()) return;
        if (FILE* f = std::fopen(path_.c_str(), "w"); f != nullptr) {
            std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", bench_.c_str());
            for (std::size_t i = 0; i < rows_.size(); ++i)
                std::fprintf(f, "%s%s\n", rows_[i].c_str(), i + 1 < rows_.size() ? "," : "");
            std::fprintf(f, "  ]\n}\n");
            std::fclose(f);
        }
    }

private:
    std::string bench_;
    std::string path_;
    std::vector<std::string> rows_;
};

inline void print_rule() {
    std::printf("--------------------------------------------------------------------------\n");
}

inline void print_banner(const char* title, const char* paper_ref) {
    print_rule();
    std::printf("%s\n(reproduces %s of the C2PI paper, DAC 2023)\n", title, paper_ref);
    print_rule();
    std::fflush(stdout);
}

}  // namespace c2pi::bench
