// Fig. 1 reproduction: MLA case study on VGG16/CIFAR-10-like. The curious
// server attacks one client image from each conv layer's activation; once
// SSIM drops below the 0.3 failure threshold, the recovered image no
// longer identifies the input — the observation that motivates C2PI.

#include "bench/common.hpp"
#include "metrics/ssim.hpp"

int main() {
    using namespace c2pi;
    bench::print_banner("Fig. 1 — MLA case study (SSIM per conv layer, single image)", "Figure 1");

    auto dataset = bench::make_dataset("CIFAR-10");
    double acc = 0.0;
    auto model = bench::load_or_train("vgg16", "CIFAR-10", dataset, &acc);
    std::printf("VGG16 (width x%.3f) test accuracy: %.2f%%\n\n", bench::scale().width_multiplier,
                100.0 * acc);

    const auto& image = dataset.test()[0].image;
    Rng rng(1);
    attack::MlaAttack mla(
        attack::MlaConfig{.iterations = bench::scale().mla_iterations, .lr = 0.06F, .seed = 5});

    std::printf("%8s  %10s  %10s  %s\n", "conv id", "SSIM", "PSNR (dB)", "verdict (threshold 0.3)");
    double last_success = 0;
    for (const auto& cut : bench::conv_id_cuts(model)) {
        const Tensor act = attack::noised_activation(model, cut, image, /*lambda=*/0.0F, rng);
        Tensor guess = mla.recover(model, cut, act);
        guess = ops::clamp(guess.reshaped(image.shape()), 0.0F, 1.0F);
        const double ssim = metrics::ssim(image, guess);
        const double psnr = metrics::psnr(image, guess);
        std::printf("%8lld  %10.3f  %10.2f  %s\n", static_cast<long long>(cut.linear_index), ssim,
                    psnr, ssim >= 0.3 ? "RECOVERED" : "protected");
        if (ssim >= 0.3) last_success = cut.as_decimal();
        std::fflush(stdout);
    }
    bench::print_rule();
    std::printf("Paper: recovery fails after conv 10 (32x32 full-width VGG16).\n");
    std::printf("Here : last successful MLA recovery at conv %.1f.\n", last_success);
    return 0;
}
