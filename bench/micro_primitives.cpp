// Microbenchmarks (google-benchmark) for the cryptographic and numeric
// substrates — not a paper artifact, but the per-primitive costs that
// explain Table II: NTT, BFV ops, the HE linear-layer server hot loops
// (seed path vs compiled PlainNtt cache), garbled-circuit ReLU, the OT
// millionaire DReLU, the DCF evaluation and per-backend online ReLU of
// the FSS subsystem, IKNP throughput, and the float conv kernel.
//
// Set C2PI_BENCH_JSON=<path> to also write the results as JSON
// (google-benchmark's native format); C2PI_FAST=1 shrinks min-time for
// smoke/CI runs.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "crypto/garbling.hpp"
#include "crypto/hash.hpp"
#include "crypto/ot.hpp"
#include "fss/compare.hpp"
#include "he/bfv.hpp"
#include "mpc/linear.hpp"
#include "mpc/nonlinear.hpp"
#include "net/runtime.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace c2pi;

void BM_NttForward(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const he::u64 p = he::next_ntt_prime(1ULL << 49, 2 * n);
    const he::NttTables tables(p, n);
    Rng rng(1);
    std::vector<he::u64> a(n);
    for (auto& v : a) v = rng.next_u64() % p;
    for (auto _ : state) {
        tables.forward(a);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NttForward)->Arg(1024)->Arg(4096);

void BM_NttInverse(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const he::u64 p = he::next_ntt_prime(1ULL << 49, 2 * n);
    const he::NttTables tables(p, n);
    Rng rng(2);
    std::vector<he::u64> a(n);
    for (auto& v : a) v = rng.next_u64() % p;
    for (auto _ : state) {
        tables.inverse(a);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NttInverse)->Arg(1024)->Arg(4096);

void BM_BfvEncrypt(benchmark::State& state) {
    const he::BfvContext ctx({.n = static_cast<std::size_t>(state.range(0)), .limbs = 4});
    crypto::ChaCha20Prg prg(crypto::Block128{1, 2});
    const auto sk = ctx.keygen(prg);
    std::vector<Ring> plain(ctx.n(), 42);
    for (auto _ : state) {
        auto ct = ctx.encrypt(plain, sk, prg);
        benchmark::DoNotOptimize(ct.c0.limbs[0].data());
    }
}
BENCHMARK(BM_BfvEncrypt)->Arg(1024)->Arg(4096);

void BM_BfvMultiplyPlainAccumulate(benchmark::State& state) {
    const he::BfvContext ctx({.n = static_cast<std::size_t>(state.range(0)), .limbs = 4});
    crypto::ChaCha20Prg prg(crypto::Block128{3, 4});
    const auto sk = ctx.keygen(prg);
    std::vector<Ring> plain(ctx.n(), 7), weight(ctx.n(), 3);
    auto ct = ctx.encrypt(plain, sk, prg);
    ctx.to_ntt(ct);
    const auto w = ctx.lift_to_ntt(weight);
    auto acc = ctx.make_accumulator();
    for (auto _ : state) {
        ctx.multiply_plain_accumulate(ct, w, acc);
        benchmark::DoNotOptimize(acc.c0.limbs[0].data());
    }
}
BENCHMARK(BM_BfvMultiplyPlainAccumulate)->Arg(4096);

void BM_BfvMultiplyPlainAccumulatePrecomputed(benchmark::State& state) {
    // The compiled fast path: NTT-form weights with Shoup companions,
    // built once. Compare against BM_BfvMultiplyPlainAccumulate.
    const he::BfvContext ctx({.n = static_cast<std::size_t>(state.range(0)), .limbs = 4});
    crypto::ChaCha20Prg prg(crypto::Block128{3, 4});
    const auto sk = ctx.keygen(prg);
    std::vector<Ring> plain(ctx.n(), 7), weight(ctx.n(), 3);
    auto ct = ctx.encrypt(plain, sk, prg);
    ctx.to_ntt(ct);
    const he::PlainNtt w = ctx.to_plain_ntt(weight);
    auto acc = ctx.make_accumulator();
    for (auto _ : state) {
        ctx.multiply_plain_accumulate(ct, w, acc);
        benchmark::DoNotOptimize(acc.c0.limbs[0].data());
    }
}
BENCHMARK(BM_BfvMultiplyPlainAccumulatePrecomputed)->Arg(4096);

/// The server-side online hot loop of the HE conv protocol, per request:
/// everything between "input ciphertexts are in NTT form" and "responses
/// ready to ship". Arg 0 = seed path (per-channel weight encode + NTT +
/// exact-arithmetic multiply, serial); arg 1 = compiled path (PlainNtt
/// cache; the CompiledModel thread pool parallelizes channels/limbs).
/// The per-request input receive/to_ntt is excluded: it is amortized
/// over all output channels and identical in both arms.
void BM_HeConvServerOnline(benchmark::State& state) {
    const bool compiled = state.range(0) == 1;
    const std::unique_ptr<core::ThreadPool> pool =
        compiled && core::resolve_thread_count(0) > 1
            ? std::make_unique<core::ThreadPool>(0)
            : nullptr;
    const he::BfvContext ctx({.n = 4096, .limbs = 4, .noise_bound = 4, .pool = pool.get()});
    const he::ConvGeometry geo{.in_channels = 64,
                               .height = 16,
                               .width = 16,
                               .out_channels = 8,
                               .kernel = 3,
                               .stride = 1,
                               .pad = 1};
    const he::ConvEncoder enc(ctx, geo);
    Rng rng(21);
    const FixedPointFormat fmt{.frac_bits = 16};
    std::vector<Ring> w(static_cast<std::size_t>(geo.out_channels * geo.in_channels * geo.kernel *
                                                 geo.kernel));
    for (auto& v : w) v = fmt.encode(rng.uniform(-1.0F, 1.0F));
    std::vector<Ring> x(static_cast<std::size_t>(geo.in_channels * geo.height * geo.width));
    for (auto& v : x) v = fmt.encode(rng.uniform(-1.0F, 1.0F));

    crypto::ChaCha20Prg prg(crypto::Block128{5, 6});
    const auto sk = ctx.keygen(prg);
    std::vector<he::Ciphertext> input_cts;
    for (std::int64_t g = 0; g < enc.num_groups(); ++g) {
        he::Ciphertext ct = ctx.encrypt(enc.encode_input_group(x, g), sk, prg);
        ctx.to_ntt(ct);
        input_cts.push_back(std::move(ct));
    }
    const std::int64_t out_pixels = geo.out_h() * geo.out_w();
    std::vector<Ring> mask(static_cast<std::size_t>(out_pixels));
    for (auto& v : mask) v = rng.next_u64();

    const mpc::ConvLayerCache cache(ctx, geo, w, {});
    for (auto _ : state) {
        for (std::int64_t o = 0; o < geo.out_channels; ++o) {
            he::Ciphertext acc;
            if (compiled) {
                ctx.multiply_plain(input_cts[0], cache.weight_ntt(0, o), acc);
                for (std::int64_t g = 1; g < enc.num_groups(); ++g)
                    ctx.multiply_plain_accumulate(input_cts[static_cast<std::size_t>(g)],
                                                  cache.weight_ntt(g, o), acc);
            } else {
                acc = ctx.make_accumulator();
                for (std::int64_t g = 0; g < enc.num_groups(); ++g)
                    ctx.multiply_plain_accumulate(input_cts[static_cast<std::size_t>(g)],
                                                  ctx.lift_to_ntt(enc.encode_weight(w, g, o)),
                                                  acc);
            }
            ctx.from_ntt(acc);
            if (compiled) {
                ctx.add_plain_at(acc, cache.scatter_idx, mask);
            } else {
                ctx.add_plain_inplace(acc, enc.scatter_outputs(mask));
            }
            ctx.mod_switch_to_two_limbs(acc);
            benchmark::DoNotOptimize(acc.c0.limbs[0].data());
        }
    }
    state.counters["out_channels"] = static_cast<double>(geo.out_channels);
    state.counters["groups"] = static_cast<double>(enc.num_groups());
}
// Arg 0 = seed path (online weight NTTs), arg 1 = compiled PlainNtt cache.
BENCHMARK(BM_HeConvServerOnline)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Fully-connected counterpart: per-block weight multiply + response
/// finalize (the input ciphertext is NTT'd once per request, outside).
void BM_HeMatvecServerOnline(benchmark::State& state) {
    const bool compiled = state.range(0) == 1;
    const std::unique_ptr<core::ThreadPool> pool =
        compiled && core::resolve_thread_count(0) > 1
            ? std::make_unique<core::ThreadPool>(0)
            : nullptr;
    const he::BfvContext ctx({.n = 4096, .limbs = 4, .noise_bound = 4, .pool = pool.get()});
    const std::int64_t in = 1024, out = 8;
    const he::MatVecEncoder enc(ctx, in, out);
    Rng rng(22);
    const FixedPointFormat fmt{.frac_bits = 16};
    std::vector<Ring> w(static_cast<std::size_t>(in * out));
    for (auto& v : w) v = fmt.encode(rng.uniform(-1.0F, 1.0F));
    std::vector<Ring> x(static_cast<std::size_t>(in));
    for (auto& v : x) v = fmt.encode(rng.uniform(-1.0F, 1.0F));

    crypto::ChaCha20Prg prg(crypto::Block128{7, 8});
    const auto sk = ctx.keygen(prg);
    he::Ciphertext input_ct = ctx.encrypt(enc.encode_input(x), sk, prg);
    ctx.to_ntt(input_ct);
    std::vector<Ring> mask(static_cast<std::size_t>(enc.outs_per_block()));
    for (auto& v : mask) v = rng.next_u64();

    const mpc::MatVecLayerCache cache(ctx, in, out, w, {});
    for (auto _ : state) {
        for (std::int64_t b = 0; b < enc.num_blocks(); ++b) {
            he::Ciphertext acc;
            if (compiled) {
                ctx.multiply_plain(input_ct, cache.w_ntt[static_cast<std::size_t>(b)], acc);
                ctx.from_ntt(acc);
                ctx.add_plain_at(acc, cache.scatter_idx[static_cast<std::size_t>(b)], mask);
            } else {
                acc = ctx.make_accumulator();
                ctx.multiply_plain_accumulate(input_ct,
                                              ctx.lift_to_ntt(enc.encode_weight_block(w, b)), acc);
                ctx.from_ntt(acc);
                ctx.add_plain_inplace(acc, enc.scatter_outputs(mask, b));
            }
            ctx.mod_switch_to_two_limbs(acc);
            benchmark::DoNotOptimize(acc.c0.limbs[0].data());
        }
    }
    state.counters["blocks"] = static_cast<double>(enc.num_blocks());
}
BENCHMARK(BM_HeMatvecServerOnline)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_GarbleReluCircuit(benchmark::State& state) {
    const crypto::Circuit circuit = crypto::build_relu_circuit(64);
    crypto::ChaCha20Prg prg(crypto::Block128{5, 6});
    for (auto _ : state) {
        auto g = crypto::garble(circuit, prg);
        benchmark::DoNotOptimize(g.tables.data());
    }
    state.counters["and_gates"] = static_cast<double>(circuit.and_count());
}
BENCHMARK(BM_GarbleReluCircuit);

void BM_EvaluateGarbledRelu(benchmark::State& state) {
    const crypto::Circuit circuit = crypto::build_relu_circuit(64);
    crypto::ChaCha20Prg prg(crypto::Block128{7, 8});
    const auto g = crypto::garble(circuit, prg);
    std::vector<crypto::Block128> ga, ea;
    for (std::int64_t i = 0; i < circuit.num_garbler_inputs; ++i)
        ga.push_back(g.garbler_label(static_cast<std::size_t>(i), i % 2 == 0));
    for (std::int64_t i = 0; i < circuit.num_evaluator_inputs; ++i)
        ea.push_back(g.evaluator_label(static_cast<std::size_t>(i), i % 3 == 0));
    for (auto _ : state) {
        auto bits = crypto::evaluate_garbled(circuit, g.tables, ga, ea, g.output_decode);
        benchmark::DoNotOptimize(bits.data());
    }
}
BENCHMARK(BM_EvaluateGarbledRelu);

void BM_SecureReluBatch(benchmark::State& state) {
    // End-to-end batched secure ReLU over the in-process channel: the
    // number that directly drives the Table II non-linear cost.
    const auto backend = state.range(0) == 0 ? mpc::NonlinearBackend::kGarbledCircuit
                                             : mpc::NonlinearBackend::kOtMillionaire;
    const std::size_t n = 1024;
    const FixedPointFormat fmt{.frac_bits = 16};
    const he::BfvContext bfv({.n = 256, .limbs = 4});
    Rng rng(9);
    std::vector<Ring> v0(n), v1(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Ring val = fmt.encode(rng.uniform(-2.0F, 2.0F));
        v0[i] = rng.next_u64();
        v1[i] = val - v0[i];
    }
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        net::DuplexChannel channel;
        net::run_two_party(
            channel,
            [&](net::Transport& t) {
                mpc::PartyContext ctx(t, fmt, bfv, crypto::Block128{1, 1});
                benchmark::DoNotOptimize(mpc::secure_relu(ctx, v0, backend));
            },
            [&](net::Transport& t) {
                mpc::PartyContext ctx(t, fmt, bfv, crypto::Block128{1, 1});
                benchmark::DoNotOptimize(mpc::secure_relu(ctx, v1, backend));
            });
        bytes = channel.stats().total_bytes();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.counters["bytes_per_relu"] = static_cast<double>(bytes) / static_cast<double>(n);
}
// Arg 0 = garbled-circuit backend (Delphi), arg 1 = OT millionaire (Cheetah).
BENCHMARK(BM_SecureReluBatch)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_DcfEval(benchmark::State& state) {
    // One local DCF evaluation (depth-64 GGM walk): the per-element
    // online compute of the kFss backend, with no transport involved.
    crypto::ChaCha20Prg prg(crypto::Block128{21, 22});
    const auto keys = fss::dcf_gen(prg.next_u64(), fss::DcfPayload{1, prg.next_u64()}, prg);
    Ring x = prg.next_u64();
    for (auto _ : state) {
        benchmark::DoNotOptimize(fss::dcf_eval(keys.k0, 0, x));
        x += 0x9E3779B97F4A7C15ULL;  // cover the domain, defeat caching
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DcfEval);

/// Online-phase cost of one batched secure ReLU per backend. For kFss
/// the DCF key material is generated ONCE outside the timed region and
/// pushed into both parties' pools each iteration (a deployment ships it
/// in the preprocessing phase), so the measurement isolates the online
/// round; GC has no preprocessing, so its online time includes garbling,
/// exactly as deployed.
void bench_relu_online(benchmark::State& state, mpc::NonlinearBackend backend) {
    const std::size_t n = 1024;
    const FixedPointFormat fmt{.frac_bits = 16};
    const he::BfvContext bfv({.n = 256, .limbs = 4});
    Rng rng(13);
    std::vector<Ring> v0(n), v1(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Ring val = fmt.encode(rng.uniform(-2.0F, 2.0F));
        v0[i] = rng.next_u64();
        v1[i] = val - v0[i];
    }
    std::vector<fss::ReluKeyShare> server_keys, client_keys;
    if (backend == mpc::NonlinearBackend::kFss) {
        crypto::ChaCha20Prg dealer(crypto::Block128{23, 24});
        for (std::size_t i = 0; i < n; ++i) {
            auto pair = fss::gen_relu_material(dealer);
            server_keys.push_back(std::move(pair.server));
            client_keys.push_back(std::move(pair.client));
        }
    }
    std::uint64_t online_bytes = 0;
    for (auto _ : state) {
        net::DuplexChannel channel;
        net::run_two_party(
            channel,
            [&](net::Transport& t) {
                mpc::PartyContext ctx(t, fmt, bfv, crypto::Block128{1, 1});
                if (!server_keys.empty()) ctx.fss_pool().push(server_keys);
                benchmark::DoNotOptimize(mpc::secure_relu(ctx, v0, backend));
            },
            [&](net::Transport& t) {
                mpc::PartyContext ctx(t, fmt, bfv, crypto::Block128{1, 1});
                if (!client_keys.empty()) ctx.fss_pool().push(client_keys);
                benchmark::DoNotOptimize(mpc::secure_relu(ctx, v1, backend));
            });
        online_bytes = channel.stats().phase_bytes(net::Phase::kOnline);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.counters["online_bytes_per_relu"] =
        static_cast<double>(online_bytes) / static_cast<double>(n);
}

void BM_ReluOnlineGc(benchmark::State& state) {
    bench_relu_online(state, mpc::NonlinearBackend::kGarbledCircuit);
}
BENCHMARK(BM_ReluOnlineGc)->Unit(benchmark::kMillisecond);

void BM_ReluOnlineFss(benchmark::State& state) {
    bench_relu_online(state, mpc::NonlinearBackend::kFss);
}
BENCHMARK(BM_ReluOnlineFss)->Unit(benchmark::kMillisecond);

void BM_IknpRandomOt(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const auto setup = crypto::dealer_base_ots(crypto::Block128{2, 3});
    crypto::ChaCha20Prg prg(crypto::Block128{4, 5});
    const auto choices = prg.next_bits(n);
    for (auto _ : state) {
        net::DuplexChannel channel;
        net::run_two_party(
            channel,
            [&](net::Transport& t) {
                crypto::IknpSender ext(setup.sender);
                benchmark::DoNotOptimize(ext.extend(t, n));
            },
            [&](net::Transport& t) {
                crypto::IknpReceiver ext(setup.receiver);
                benchmark::DoNotOptimize(ext.extend(t, choices));
            });
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_IknpRandomOt)->Arg(4096)->Arg(65536)->Unit(benchmark::kMillisecond);

void BM_Conv2dFloat(benchmark::State& state) {
    Rng rng(11);
    const Tensor x = Tensor::randn({1, 16, 32, 32}, rng);
    const Tensor w = Tensor::randn({16, 16, 3, 3}, rng);
    const Tensor b = Tensor::randn({16}, rng);
    const ops::ConvSpec spec{.kernel = 3, .stride = 1, .pad = 1};
    for (auto _ : state) {
        auto y = ops::conv2d(x, w, b, spec);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_Conv2dFloat);

void BM_Sha256(benchmark::State& state) {
    std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xAB);
    for (auto _ : state) {
        auto d = crypto::Sha256::digest(data);
        benchmark::DoNotOptimize(d.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

void BM_CrHash(benchmark::State& state) {
    crypto::Block128 x{123, 456};
    std::uint64_t tweak = 0;
    for (auto _ : state) {
        x = crypto::cr_hash(tweak++, x);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_CrHash);

// -- streamed-response pipelining benchmark -----------------------------------
// End-to-end HE conv layer (both parties, real protocol) over a link
// model: every client recv pays latency + bytes/bandwidth before the
// payload is usable, the shape of a serialized network pipe. The sync
// arm computes every response behind a barrier and only then ships; the
// pipelined arm streams each response chunk as it is finished, so
// transmission and the client's decrypt+decode overlap the server's
// remaining compute. This is the wall-clock claim behind
// Options::pipeline (scripts/bench_wan.sh measures the same effect
// end-to-end with real tc/netem WAN profiles). Registered only outside
// C2PI_FAST: a sleep-calibrated benchmark has no business in the CI
// perf trajectory or its baseline.

/// Client-side link model: recv blocks for latency + size/bandwidth
/// after the payload arrives. Applied on the receiver so both arms pay
/// identical per-byte cost and only the *overlap* differs.
class LinkModelTransport final : public net::Transport {
public:
    LinkModelTransport(net::Transport& inner, double latency_s, double bytes_per_s)
        : Transport(inner.party_id()),
          inner_(&inner),
          latency_s_(latency_s),
          bytes_per_s_(bytes_per_s) {}

    void send_bytes(std::span<const std::uint8_t> data) override {
        inner_->set_phase(phase_);
        inner_->send_bytes(data);
    }
    [[nodiscard]] std::vector<std::uint8_t> recv_bytes() override {
        auto out = inner_->recv_bytes();
        link_delay(out.size());
        return out;
    }
    void recv_bytes_into(std::vector<std::uint8_t>& out) override {
        inner_->recv_bytes_into(out);
        link_delay(out.size());
    }
    [[nodiscard]] net::ChannelStats stats() const override { return inner_->stats(); }

private:
    void link_delay(std::size_t bytes) const {
        const double seconds = latency_s_ + static_cast<double>(bytes) / bytes_per_s_;
        std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    }

    net::Transport* inner_;
    double latency_s_;
    double bytes_per_s_;
};

void BM_HeConvStreamedResponsesLan(benchmark::State& state) {
    const bool pipelined = state.range(0) == 1;
    // Single-group input (one upload ciphertext) fanning out to 64
    // response chunks: upload cost is negligible, so the measurement
    // isolates the response stream — the part pipelining changes.
    // Serial BFV: one chunk of server compute per link-transmission
    // slot, the balance where overlap matters.
    const he::BfvContext ctx({.n = 4096, .limbs = 4, .noise_bound = 4});
    const he::ConvGeometry geo{.in_channels = 16,
                               .height = 16,
                               .width = 16,
                               .out_channels = 64,
                               .kernel = 3,
                               .stride = 1,
                               .pad = 1};
    Rng rng(23);
    const FixedPointFormat fmt{.frac_bits = 16};
    std::vector<Ring> w(static_cast<std::size_t>(geo.out_channels * geo.in_channels *
                                                 geo.kernel * geo.kernel));
    for (auto& v : w) v = fmt.encode(rng.uniform(-1.0F, 1.0F));
    const auto make_share = [&](std::uint64_t seed) {
        Rng r(seed);
        std::vector<Ring> x(static_cast<std::size_t>(geo.in_channels * geo.height * geo.width));
        for (auto& v : x) v = fmt.encode(r.uniform(-1.0F, 1.0F));
        return x;
    };
    const auto x0 = make_share(31), x1 = make_share(32);
    const mpc::ConvLayerCache cache(ctx, geo, w, {});

    // 0.1 ms switch latency, 500 MB/s (4 Gbit/s): a modern LAN testbed.
    // One two-limb response chunk is ~128 KiB.
    const double kLatency = 0.1e-3, kBandwidth = 500e6;
    const crypto::Block128 session_seed{0xBEEF, 0xCAFE};
    crypto::ChaCha20Prg key_prg(crypto::Block128{91, 92});
    const auto client_key = ctx.keygen(key_prg);  // key setup is not the measurand
    for (auto _ : state) {
        net::DuplexChannel channel;
        net::run_two_party(
            channel,
            [&](net::Transport& t) {
                mpc::PartyContext pctx(t, fmt, ctx, session_seed);
                pctx.set_pipeline(pipelined);
                benchmark::DoNotOptimize(mpc::he_conv_server(pctx, cache, x0));
            },
            [&](net::Transport& t) {
                LinkModelTransport link(t, kLatency, kBandwidth);
                mpc::PartyContext pctx(link, fmt, ctx, session_seed);
                pctx.set_client_key(client_key);
                benchmark::DoNotOptimize(mpc::he_conv_client(pctx, cache.enc, x1));
            });
    }
    state.counters["chunks"] = static_cast<double>(geo.out_channels);
    state.counters["pipelined"] = pipelined ? 1.0 : 0.0;
}

void register_link_benchmarks() {
    benchmark::RegisterBenchmark("BM_HeConvStreamedResponsesLan", BM_HeConvStreamedResponsesLan)
        ->Arg(0)
        ->Arg(1)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime()
        ->MinTime(2.0);
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN: environment-driven knobs so the
// CI perf-trajectory step needs no argument plumbing.
//  * C2PI_BENCH_JSON=<path> — also write results as JSON to <path>;
//  * C2PI_FAST=1            — cut per-benchmark min time for smoke runs
//                             and skip the sleep-calibrated link pair.
int main(int argc, char** argv) {
    std::vector<char*> args(argv, argv + argc);
    std::string out_flag, fmt_flag, fast_flag;
    if (const char* path = std::getenv("C2PI_BENCH_JSON"); path != nullptr && path[0] != '\0') {
        out_flag = std::string("--benchmark_out=") + path;
        fmt_flag = "--benchmark_out_format=json";
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    const char* fast = std::getenv("C2PI_FAST");
    const bool fast_mode = fast != nullptr && fast[0] == '1';
    if (fast_mode) {
        fast_flag = "--benchmark_min_time=0.01";
        args.push_back(fast_flag.data());
    } else {
        register_link_benchmarks();
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
