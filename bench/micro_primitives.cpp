// Microbenchmarks (google-benchmark) for the cryptographic and numeric
// substrates — not a paper artifact, but the per-primitive costs that
// explain Table II: NTT, BFV ops, garbled-circuit ReLU, the OT millionaire
// DReLU, IKNP throughput, and the float conv kernel.

#include <benchmark/benchmark.h>

#include "crypto/garbling.hpp"
#include "crypto/hash.hpp"
#include "crypto/ot.hpp"
#include "he/bfv.hpp"
#include "mpc/nonlinear.hpp"
#include "net/runtime.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace c2pi;

void BM_NttForward(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const he::u64 p = he::next_ntt_prime(1ULL << 49, 2 * n);
    const he::NttTables tables(p, n);
    Rng rng(1);
    std::vector<he::u64> a(n);
    for (auto& v : a) v = rng.next_u64() % p;
    for (auto _ : state) {
        tables.forward(a);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NttForward)->Arg(1024)->Arg(4096);

void BM_BfvEncrypt(benchmark::State& state) {
    const he::BfvContext ctx({.n = static_cast<std::size_t>(state.range(0)), .limbs = 4});
    crypto::ChaCha20Prg prg(crypto::Block128{1, 2});
    const auto sk = ctx.keygen(prg);
    std::vector<Ring> plain(ctx.n(), 42);
    for (auto _ : state) {
        auto ct = ctx.encrypt(plain, sk, prg);
        benchmark::DoNotOptimize(ct.c0.limbs[0].data());
    }
}
BENCHMARK(BM_BfvEncrypt)->Arg(1024)->Arg(4096);

void BM_BfvMultiplyPlainAccumulate(benchmark::State& state) {
    const he::BfvContext ctx({.n = static_cast<std::size_t>(state.range(0)), .limbs = 4});
    crypto::ChaCha20Prg prg(crypto::Block128{3, 4});
    const auto sk = ctx.keygen(prg);
    std::vector<Ring> plain(ctx.n(), 7), weight(ctx.n(), 3);
    auto ct = ctx.encrypt(plain, sk, prg);
    ctx.to_ntt(ct);
    const auto w = ctx.lift_to_ntt(weight);
    auto acc = ctx.make_accumulator();
    for (auto _ : state) {
        ctx.multiply_plain_accumulate(ct, w, acc);
        benchmark::DoNotOptimize(acc.c0.limbs[0].data());
    }
}
BENCHMARK(BM_BfvMultiplyPlainAccumulate)->Arg(4096);

void BM_GarbleReluCircuit(benchmark::State& state) {
    const crypto::Circuit circuit = crypto::build_relu_circuit(64);
    crypto::ChaCha20Prg prg(crypto::Block128{5, 6});
    for (auto _ : state) {
        auto g = crypto::garble(circuit, prg);
        benchmark::DoNotOptimize(g.tables.data());
    }
    state.counters["and_gates"] = static_cast<double>(circuit.and_count());
}
BENCHMARK(BM_GarbleReluCircuit);

void BM_EvaluateGarbledRelu(benchmark::State& state) {
    const crypto::Circuit circuit = crypto::build_relu_circuit(64);
    crypto::ChaCha20Prg prg(crypto::Block128{7, 8});
    const auto g = crypto::garble(circuit, prg);
    std::vector<crypto::Block128> ga, ea;
    for (std::int64_t i = 0; i < circuit.num_garbler_inputs; ++i)
        ga.push_back(g.garbler_label(static_cast<std::size_t>(i), i % 2 == 0));
    for (std::int64_t i = 0; i < circuit.num_evaluator_inputs; ++i)
        ea.push_back(g.evaluator_label(static_cast<std::size_t>(i), i % 3 == 0));
    for (auto _ : state) {
        auto bits = crypto::evaluate_garbled(circuit, g.tables, ga, ea, g.output_decode);
        benchmark::DoNotOptimize(bits.data());
    }
}
BENCHMARK(BM_EvaluateGarbledRelu);

void BM_SecureReluBatch(benchmark::State& state) {
    // End-to-end batched secure ReLU over the in-process channel: the
    // number that directly drives the Table II non-linear cost.
    const auto backend = state.range(0) == 0 ? mpc::NonlinearBackend::kGarbledCircuit
                                             : mpc::NonlinearBackend::kOtMillionaire;
    const std::size_t n = 1024;
    const FixedPointFormat fmt{.frac_bits = 16};
    const he::BfvContext bfv({.n = 256, .limbs = 4});
    Rng rng(9);
    std::vector<Ring> v0(n), v1(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Ring val = fmt.encode(rng.uniform(-2.0F, 2.0F));
        v0[i] = rng.next_u64();
        v1[i] = val - v0[i];
    }
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        net::DuplexChannel channel;
        net::run_two_party(
            channel,
            [&](net::Transport& t) {
                mpc::PartyContext ctx(t, fmt, bfv, crypto::Block128{1, 1});
                benchmark::DoNotOptimize(mpc::secure_relu(ctx, v0, backend));
            },
            [&](net::Transport& t) {
                mpc::PartyContext ctx(t, fmt, bfv, crypto::Block128{1, 1});
                benchmark::DoNotOptimize(mpc::secure_relu(ctx, v1, backend));
            });
        bytes = channel.stats().total_bytes();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.counters["bytes_per_relu"] = static_cast<double>(bytes) / static_cast<double>(n);
}
// Arg 0 = garbled-circuit backend (Delphi), arg 1 = OT millionaire (Cheetah).
BENCHMARK(BM_SecureReluBatch)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_IknpRandomOt(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const auto setup = crypto::dealer_base_ots(crypto::Block128{2, 3});
    crypto::ChaCha20Prg prg(crypto::Block128{4, 5});
    const auto choices = prg.next_bits(n);
    for (auto _ : state) {
        net::DuplexChannel channel;
        net::run_two_party(
            channel,
            [&](net::Transport& t) {
                crypto::IknpSender ext(setup.sender);
                benchmark::DoNotOptimize(ext.extend(t, n));
            },
            [&](net::Transport& t) {
                crypto::IknpReceiver ext(setup.receiver);
                benchmark::DoNotOptimize(ext.extend(t, choices));
            });
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_IknpRandomOt)->Arg(4096)->Arg(65536)->Unit(benchmark::kMillisecond);

void BM_Conv2dFloat(benchmark::State& state) {
    Rng rng(11);
    const Tensor x = Tensor::randn({1, 16, 32, 32}, rng);
    const Tensor w = Tensor::randn({16, 16, 3, 3}, rng);
    const Tensor b = Tensor::randn({16}, rng);
    const ops::ConvSpec spec{.kernel = 3, .stride = 1, .pad = 1};
    for (auto _ : state) {
        auto y = ops::conv2d(x, w, b, spec);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_Conv2dFloat);

void BM_Sha256(benchmark::State& state) {
    std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xAB);
    for (auto _ : state) {
        auto d = crypto::Sha256::digest(data);
        benchmark::DoNotOptimize(d.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

void BM_CrHash(benchmark::State& state) {
    crypto::Block128 x{123, 456};
    std::uint64_t tweak = 0;
    for (auto _ : state) {
        x = crypto::cr_hash(tweak++, x);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_CrHash);

}  // namespace

BENCHMARK_MAIN();
