// Fig. 6 reproduction: uniform share-noise as a defense against DINA.
// Sweeping the noise magnitude lambda from 0 to 0.5 must monotonically
// (on average) lower recovery SSIM, enabling earlier boundaries.

#include "bench/common.hpp"

int main() {
    using namespace c2pi;
    bench::print_banner("Fig. 6 — noise magnitude vs DINA recovery SSIM (VGG16)", "Figure 6");
    const float lambdas[] = {0.0F, 0.1F, 0.3F, 0.5F};
    // Conv-id subset keeps the bench tractable; the full curve shape
    // (monotone decay in lambda at every depth) is preserved.
    const std::int64_t conv_ids[] = {1, 3, 9, 13};

    for (const std::string ds_kind : {"CIFAR-10", "CIFAR-100"}) {
        auto dataset = bench::make_dataset(ds_kind);
        auto model = bench::load_or_train("vgg16", ds_kind, dataset);

        std::printf("\nVGG16 / %s-like  (avg SSIM; rows = conv id, cols = lambda)\n",
                    ds_kind.c_str());
        std::printf("%8s", "conv id");
        for (const float l : lambdas) std::printf("  l=%4.1f", l);
        std::printf("\n");
        for (const std::int64_t id : conv_ids) {
            if (id >= model.num_linear_ops()) continue;
            const nn::CutPoint cut{.linear_index = id, .after_relu = false};
            std::printf("%8lld", static_cast<long long>(id));
            for (const float lambda : lambdas) {
                const double ssim =
                    bench::cached_dina_ssim("vgg16", ds_kind, model, dataset, cut, lambda);
                std::printf("  %6.3f", ssim);
                std::fflush(stdout);
            }
            std::printf("\n");
        }
    }
    bench::print_rule();
    std::printf("Paper: higher lambda -> stronger defense (lower SSIM) at every layer,\n"
                "potentially moving the boundary earlier; lambda=0.1 is the operating point.\n");
    return 0;
}
