// Fig. 4 reproduction: MLA vs EINA vs DINA average SSIM per conv layer of
// VGG16 on both datasets. Expected shape: DINA >= EINA >= MLA (DINA gains
// ~0.1-0.23 SSIM in the paper) and every curve decays with depth, so DINA
// returns the most conservative (latest) potential boundary.

#include "bench/common.hpp"

int main() {
    using namespace c2pi;
    bench::print_banner("Fig. 4 — IDPA comparison (MLA / EINA / DINA on VGG16)", "Figure 4");
    const char* attacks[] = {"MLA", "EINA", "DINA"};

    for (const std::string ds_kind : {"CIFAR-10", "CIFAR-100"}) {
        auto dataset = bench::make_dataset(ds_kind);
        auto model = bench::load_or_train("vgg16", ds_kind, dataset);
        // Conv-id subset keeps the bench tractable on CPU; the curve shape
        // (decay with depth, DINA >= EINA >= MLA) is what the figure shows.
        std::vector<nn::CutPoint> cuts;
        for (const std::int64_t id : {1, 2, 3, 5, 7, 9, 13})
            cuts.push_back({.linear_index = id, .after_relu = false});

        std::printf("\nVGG16 / %s-like  (avg SSIM over %zu recoveries, lambda=0.1)\n",
                    ds_kind.c_str(), bench::scale().attack_eval_samples);
        std::printf("%8s  %10s  %10s  %10s\n", "conv id", "MLA", "EINA", "DINA");

        std::vector<std::vector<double>> ssim(3, std::vector<double>(cuts.size(), 0.0));
        for (std::size_t a = 0; a < 3; ++a) {
            const auto factory = bench::make_attack_factory(attacks[a]);
            for (std::size_t c = 0; c < cuts.size(); ++c) {
                if (std::string(attacks[a]) == "DINA") {
                    ssim[a][c] =
                        bench::cached_dina_ssim("vgg16", ds_kind, model, dataset, cuts[c], 0.1F);
                    continue;
                }
                auto attack = factory();
                // MLA is per-image gradient descent: fewer eval samples
                // keep its column tractable without changing the ordering.
                const std::size_t n_eval = std::string(attacks[a]) == "MLA"
                                               ? 3
                                               : bench::scale().attack_eval_samples;
                const auto eval = attack::evaluate_idpa(*attack, model, cuts[c], dataset, n_eval,
                                                        /*lambda=*/0.1F, /*seed=*/101 + c);
                ssim[a][c] = eval.avg_ssim;
            }
        }
        for (std::size_t c = 0; c < cuts.size(); ++c) {
            std::printf("%8lld  %10.3f  %10.3f  %10.3f\n",
                        static_cast<long long>(cuts[c].linear_index), ssim[0][c], ssim[1][c],
                        ssim[2][c]);
        }
        // Potential boundary per attack: first conv id (from the tail)
        // after which the attack fails the 0.3 threshold.
        std::printf("potential boundary (sigma=0.3):");
        for (std::size_t a = 0; a < 3; ++a) {
            std::int64_t boundary = 1;
            for (std::size_t c = 0; c < cuts.size(); ++c)
                if (ssim[a][c] >= 0.3) boundary = cuts[c].linear_index + 1;
            std::printf("  %s=conv %lld", attacks[a], static_cast<long long>(boundary));
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    bench::print_rule();
    std::printf("Paper: DINA beats MLA by ~0.21-0.23 and EINA by ~0.11-0.15 SSIM at conv 7;\n"
                "DINA's boundary is the most conservative of the three.\n");
    return 0;
}
