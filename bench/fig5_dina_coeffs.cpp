// Fig. 5 reproduction: DINA loss-coefficient ablation. DINA-c1 uses the
// monotonically increasing coefficients (alpha0=1, alpha1=3, alpha_j =
// 2*alpha_{j-1}); DINA-c2 uses uniform coefficients. The paper reports c1
// achieving higher average SSIM at most depths.

#include "bench/common.hpp"

int main() {
    using namespace c2pi;
    bench::print_banner("Fig. 5 — DINA-c1 vs DINA-c2 coefficient ablation (VGG16)", "Figure 5");

    for (const std::string ds_kind : {"CIFAR-10", "CIFAR-100"}) {
        auto dataset = bench::make_dataset(ds_kind);
        auto model = bench::load_or_train("vgg16", ds_kind, dataset);
        std::vector<nn::CutPoint> cuts;
        for (const std::int64_t id : {1, 3, 5, 9, 13})
            cuts.push_back({.linear_index = id, .after_relu = false});

        std::printf("\nVGG16 / %s-like\n", ds_kind.c_str());
        std::printf("%8s  %10s  %10s  %12s\n", "conv id", "DINA-c1", "DINA-c2", "improvement");
        double mean_improvement = 0.0;
        for (std::size_t c = 0; c < cuts.size(); ++c) {
            const double s1 =
                bench::cached_dina_ssim("vgg16", ds_kind, model, dataset, cuts[c], 0.1F);
            auto c2 = bench::make_attack_factory("DINA-c2")();
            const auto e2 = attack::evaluate_idpa(*c2, model, cuts[c], dataset,
                                                  bench::scale().attack_eval_samples, 0.1F,
                                                  101 + static_cast<std::size_t>(
                                                            cuts[c].linear_index));
            const double improvement = s1 - e2.avg_ssim;
            mean_improvement += improvement;
            std::printf("%8lld  %10.3f  %10.3f  %+12.3f\n",
                        static_cast<long long>(cuts[c].linear_index), s1, e2.avg_ssim,
                        improvement);
            std::fflush(stdout);
        }
        std::printf("mean improvement of DINA-c1 over DINA-c2: %+.3f SSIM\n",
                    mean_improvement / static_cast<double>(cuts.size()));
    }
    bench::print_rule();
    std::printf("Paper: c1 gains up to ~0.10 (CIFAR-10) / ~0.15 (CIFAR-100) SSIM; the gain\n"
                "fluctuates per layer but is positive on average.\n");
    return 0;
}
