// Table I reproduction: C2PI boundary and accuracy for two DINA failure
// thresholds (sigma = 0.2 and 0.3) across the six model x dataset
// combinations. One SSIM sweep per combination serves both thresholds
// (the sweep records avg SSIM at every probed cut).

#include "bench/common.hpp"

namespace {

using namespace c2pi;

struct Row {
    double baseline;
    nn::CutPoint b02, b03;
    double acc02, acc03;
};

Row run_combo(const std::string& model_name, const std::string& ds_kind) {
    auto dataset = bench::make_dataset(ds_kind);
    Row row{};
    auto model = bench::load_or_train(model_name, ds_kind, dataset, &row.baseline);

    // One tail-to-head DINA sweep serves both thresholds (Algorithm 1 with
    // shared phase-1 probes; integer conv-id cuts keep the sweep
    // tractable; the paper additionally probes .5 positions).
    const double sigmas[] = {0.2, 0.3};
    const auto results =
        bench::cached_boundary_search(model_name, ds_kind, model, dataset, sigmas,
                                      /*lambda=*/0.1F, /*max_accuracy_drop=*/0.025,
                                      /*include_half_points=*/false);
    row.b02 = results[0].boundary;
    row.acc02 = results[0].boundary_accuracy;
    row.b03 = results[1].boundary;
    row.acc03 = results[1].boundary_accuracy;
    return row;
}

}  // namespace

int main() {
    bench::print_banner("Table I — C2PI boundary and accuracy (sigma = 0.2 / 0.3)", "Table I");
    std::printf("%-10s %-8s %12s | %10s %9s | %10s %9s\n", "dataset", "network", "baseline acc",
                "b(s=0.2)", "acc", "b(s=0.3)", "acc");
    bench::print_rule();
    for (const std::string ds_kind : {"CIFAR-10", "CIFAR-100"}) {
        for (const std::string model_name : {"alexnet", "vgg16", "vgg19"}) {
            const Row row = run_combo(model_name, ds_kind);
            std::printf("%-10s %-8s %11.2f%% | %10.1f %8.2f%% | %10.1f %8.2f%%\n", ds_kind.c_str(),
                        model_name.c_str(), 100.0 * row.baseline, row.b02.as_decimal(),
                        100.0 * row.acc02, row.b03.as_decimal(), 100.0 * row.acc03);
            std::fflush(stdout);
        }
    }
    bench::print_rule();
    std::printf(
        "Paper (full-width, real CIFAR): boundaries 5/13.5/11 (s=0.2) and 4/9/9 (s=0.3)\n"
        "on CIFAR-10; accuracy within ~2.5%% of baseline. Expect the same ordering here:\n"
        "s=0.2 boundaries at or later than s=0.3 boundaries, accuracy near baseline.\n");
    return 0;
}
