#!/usr/bin/env bash
# End-to-end network-profile benchmark: run the real two-process
# deployment (pi_server + pi_client over TCP) under tc/netem link
# profiles and measure the wall-clock effect of the pipelined online
# phase (SessionConfig::pipeline) against --no-pipeline.
#
#   scripts/bench_wan.sh [path/to/build/examples] [out.json]
#
# Profiles (applied to the loopback device with `tc qdisc ... netem`):
#   local  no shaping — the raw machine, always measured;
#   lan    3 Gbit/s, 0.15 ms delay — the paper's LAN testbed band;
#   wan    100 Mbit/s, 20 ms delay — the paper's WAN band.
#
# Each (profile, mode) cell serves several inferences and reports the
# median end-to-end seconds from pi_client's own stats line. Results are
# written as google-benchmark-shaped JSON (BENCH_e2e.json by default) so
# the same tooling that reads BENCH_micro.json can diff them; CI uploads
# the file as an artifact.
#
# Traffic shaping needs root (or CAP_NET_ADMIN): the script tries plain
# `tc`, then `sudo -n tc`. When neither works — normal on a dev box —
# the shaped profiles are SKIPPED with a note and only `local` is
# measured; the script still exits 0 and still writes the JSON. The
# pipelining win under `local` is small by construction (loopback has no
# transmission time to hide), so treat shaped runs as the measurement
# and the local pair as a sanity floor.
set -euo pipefail

bin_dir=${1:-build/examples}
out_json=${2:-BENCH_e2e.json}
runs_per_cell=${C2PI_WAN_RUNS:-3}
server_bin=$bin_dir/pi_server
client_bin=$bin_dir/pi_client
[[ -x $server_bin && -x $client_bin ]] || {
    echo "bench_wan: missing $server_bin or $client_bin (build first)" >&2
    exit 1
}

workdir=$(mktemp -d)
server_pid=
TC=
shaped=0

tc_cmd() {
    # shellcheck disable=SC2086
    $TC "$@"
}

cleanup() {
    [[ -n $server_pid ]] && kill "$server_pid" 2>/dev/null || true
    [[ $shaped -eq 1 ]] && tc_cmd qdisc del dev lo root 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

# Pick a working tc invocation; empty TC = shaping unavailable.
if tc qdisc show dev lo >/dev/null 2>&1 &&
    tc qdisc add dev lo root netem delay 0ms 2>/dev/null; then
    TC=tc
    tc qdisc del dev lo root 2>/dev/null || true
elif sudo -n tc qdisc add dev lo root netem delay 0ms 2>/dev/null; then
    TC="sudo -n tc"
    sudo -n tc qdisc del dev lo root 2>/dev/null || true
else
    echo "bench_wan: tc/netem unavailable (need root or CAP_NET_ADMIN);" \
        "measuring the unshaped 'local' profile only" >&2
fi

shape() {
    local profile=$1
    [[ -n $TC ]] || return 1
    case $profile in
    local) tc_cmd qdisc del dev lo root 2>/dev/null || true; shaped=0 ;;
    lan)
        tc_cmd qdisc replace dev lo root netem delay 0.15ms rate 3gbit
        shaped=1
        ;;
    wan)
        tc_cmd qdisc replace dev lo root netem delay 20ms rate 100mbit
        shaped=1
        ;;
    esac
}

# One cell: serve $runs_per_cell clients, print the median end-to-end
# seconds (from pi_client's "(%.3f s end-to-end)" line).
run_cell() {
    local mode_flags=$1
    local server_log=$workdir/server.log
    local client_log=$workdir/client.log
    : >"$server_log"
    # shellcheck disable=SC2086
    "$server_bin" --port 0 --clients "$runs_per_cell" $mode_flags \
        >"$server_log" 2>&1 &
    server_pid=$!
    local port=
    for _ in $(seq 1 100); do
        port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$server_log")
        [[ -n $port ]] && break
        kill -0 "$server_pid" 2>/dev/null || break
        sleep 0.1
    done
    [[ -n $port ]] || {
        echo "bench_wan: server did not report a port" >&2
        cat "$server_log" >&2
        return 1
    }
    local times=()
    for i in $(seq 1 "$runs_per_cell"); do
        # shellcheck disable=SC2086
        "$client_bin" --port "$port" --input-seed "$((100 + i))" $mode_flags \
            >"$client_log" 2>&1 || {
            echo "bench_wan: client run $i failed" >&2
            cat "$client_log" >&2
            return 1
        }
        times+=("$(sed -n 's/.*(\([0-9.]*\) s end-to-end).*/\1/p' "$client_log" | head -1)")
    done
    wait "$server_pid" || true
    server_pid=
    printf '%s\n' "${times[@]}" | sort -g | awk '{a[NR]=$1} END {print a[int((NR+1)/2)]}'
}

declare -a names=() medians=()
for profile in local lan wan; do
    if [[ $profile != local ]]; then
        shape "$profile" || {
            echo "bench_wan: skipping '$profile' (no shaping)" >&2
            continue
        }
    fi
    for mode in pipelined no-pipeline; do
        flags=""
        [[ $mode == no-pipeline ]] && flags="--no-pipeline"
        echo "bench_wan: $profile / $mode ($runs_per_cell runs) ..."
        median=$(run_cell "$flags")
        echo "bench_wan:   median ${median}s end-to-end"
        names+=("BM_E2eInference/$profile/$mode")
        medians+=("$median")
    done
done
[[ -n $TC ]] && shape local || true

# google-benchmark-shaped JSON so bench tooling can consume it.
{
    echo '{'
    echo '  "context": {'
    echo "    \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "    \"host_name\": \"$(hostname)\","
    echo "    \"executable\": \"$server_bin\","
    echo "    \"shaping\": \"${TC:-none}\","
    echo "    \"runs_per_cell\": $runs_per_cell"
    echo '  },'
    echo '  "benchmarks": ['
    for i in "${!names[@]}"; do
        sep=,
        [[ $i -eq $((${#names[@]} - 1)) ]] && sep=
        ms=$(awk -v s="${medians[$i]}" 'BEGIN {printf "%.3f", s * 1000}')
        echo "    {\"name\": \"${names[$i]}\", \"run_type\": \"iteration\"," \
            "\"real_time\": $ms, \"cpu_time\": $ms, \"time_unit\": \"ms\"}$sep"
    done
    echo '  ]'
    echo '}'
} >"$out_json"
echo "bench_wan: wrote $out_json"
