#!/usr/bin/env bash
# Two-process deployment smoke test: launch pi_server and pi_client as
# separate OS processes over localhost TCP and require the client to
# (a) produce a prediction and (b) pass its --check audit against
# plaintext inference. Run by CI and registered as the `smoke_tcp`
# ctest; also runnable by hand:
#
#   scripts/smoke_tcp.sh [path/to/build/examples]
#
# Uses an ephemeral port (the server's "listening on" line reports it),
# so parallel runs cannot collide.
set -euo pipefail

bin_dir=${1:-build/examples}
server_bin=$bin_dir/pi_server
client_bin=$bin_dir/pi_client
[[ -x $server_bin && -x $client_bin ]] || {
    echo "smoke_tcp: missing $server_bin or $client_bin (build first)" >&2
    exit 1
}

workdir=$(mktemp -d)
server_log=$workdir/server.log
client_log=$workdir/client.log
server_pid=
cleanup() {
    [[ -n $server_pid ]] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

"$server_bin" --port 0 --clients 1 >"$server_log" 2>&1 &
server_pid=$!

port=
for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$server_log")
    [[ -n $port ]] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$server_log" >&2; exit 1; }
    sleep 0.1
done
[[ -n $port ]] || { echo "smoke_tcp: server never reported its port" >&2; cat "$server_log" >&2; exit 1; }

client_rc=0
"$client_bin" --port "$port" --check >"$client_log" 2>&1 || client_rc=$?

server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=

echo "--- pi_server ---"; cat "$server_log"
echo "--- pi_client ---"; cat "$client_log"

[[ $client_rc -eq 0 ]] || { echo "smoke_tcp: client failed (rc=$client_rc)" >&2; exit 1; }
[[ $server_rc -eq 0 ]] || { echo "smoke_tcp: server failed (rc=$server_rc)" >&2; exit 1; }
grep -q "predicted class:" "$client_log" || { echo "smoke_tcp: no prediction in client output" >&2; exit 1; }
grep -q "CHECK OK" "$client_log" || { echo "smoke_tcp: client check did not pass" >&2; exit 1; }
echo "smoke_tcp: OK (two processes, port $port)"
