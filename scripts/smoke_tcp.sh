#!/usr/bin/env bash
# Two-process deployment smoke test: launch pi_server and pi_client as
# separate OS processes over localhost TCP and require that
#   (a) the WEIGHTLESS client path works: the client receives the model
#       artifact over the wire (no make_demo_model on the client side),
#       reports its size, and produces a prediction;
#   (b) the audit path works: a second client run with --check
#       --with-model passes its comparison against plaintext inference;
#   (c) --check WITHOUT --with-model fails fast with a clear message —
#       the default client has no weights to check against, by design.
# Run by CI and registered as the `smoke_tcp` ctest; also runnable by
# hand:
#
#   scripts/smoke_tcp.sh [path/to/build/examples] [extra flags...]
#
# Flags after the bin dir are passed through to BOTH binaries (e.g.
# `--nonlinear fss` exercises the FSS preprocessing path end to end —
# the smoke_tcp_fss ctest). Uses an ephemeral port (the server's
# "listening on" line reports it), so parallel runs cannot collide.
set -euo pipefail

bin_dir=${1:-build/examples}
shift $(( $# > 0 ? 1 : 0 ))
extra=("$@")
server_bin=$bin_dir/pi_server
client_bin=$bin_dir/pi_client
[[ -x $server_bin && -x $client_bin ]] || {
    echo "smoke_tcp: missing $server_bin or $client_bin (build first)" >&2
    exit 1
}

workdir=$(mktemp -d)
server_log=$workdir/server.log
client_log=$workdir/client.log
check_log=$workdir/client_check.log
noweights_log=$workdir/client_noweights.log
server_pid=
cleanup() {
    [[ -n $server_pid ]] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

# (c) needs no server: the flag contradiction is rejected before connecting.
check_rc=0
"$client_bin" --check >"$noweights_log" 2>&1 || check_rc=$?
[[ $check_rc -ne 0 ]] || { echo "smoke_tcp: --check without --with-model must fail" >&2; exit 1; }
grep -q "with-model" "$noweights_log" || {
    echo "smoke_tcp: --check refusal did not explain --with-model" >&2
    cat "$noweights_log" >&2
    exit 1
}

"$server_bin" --port 0 --clients 2 ${extra[@]+"${extra[@]}"} >"$server_log" 2>&1 &
server_pid=$!

port=
for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$server_log")
    [[ -n $port ]] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$server_log" >&2; exit 1; }
    sleep 0.1
done
[[ -n $port ]] || { echo "smoke_tcp: server never reported its port" >&2; cat "$server_log" >&2; exit 1; }

# (a) the deployed default: a weightless client, artifact over the wire.
client_rc=0
"$client_bin" --port "$port" ${extra[@]+"${extra[@]}"} >"$client_log" 2>&1 || client_rc=$?

# (b) the opt-in audit: local reference weights, plaintext comparison.
audit_rc=0
"$client_bin" --port "$port" --check --with-model ${extra[@]+"${extra[@]}"} >"$check_log" 2>&1 || audit_rc=$?

server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=

echo "--- pi_server ---"; cat "$server_log"
echo "--- pi_client (weightless) ---"; cat "$client_log"
echo "--- pi_client (--check --with-model) ---"; cat "$check_log"

[[ $client_rc -eq 0 ]] || { echo "smoke_tcp: weightless client failed (rc=$client_rc)" >&2; exit 1; }
[[ $audit_rc -eq 0 ]] || { echo "smoke_tcp: checking client failed (rc=$audit_rc)" >&2; exit 1; }
[[ $server_rc -eq 0 ]] || { echo "smoke_tcp: server failed (rc=$server_rc)" >&2; exit 1; }
grep -Eq "model artifact: [0-9]+ bytes" "$client_log" || {
    echo "smoke_tcp: weightless client did not report the artifact size" >&2
    exit 1
}
grep -q "predicted class:" "$client_log" || { echo "smoke_tcp: no prediction in weightless client output" >&2; exit 1; }
grep -Eq "model artifact: [0-9]+ bytes" "$server_log" || {
    echo "smoke_tcp: server did not report the artifact size" >&2
    exit 1
}
grep -q "CHECK OK" "$check_log" || { echo "smoke_tcp: client check did not pass" >&2; exit 1; }
echo "smoke_tcp: OK (two processes, port $port, weightless client + audit)"
