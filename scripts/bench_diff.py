#!/usr/bin/env python3
"""Perf-regression gate: diff a fresh google-benchmark JSON against the
committed baseline (bench/baseline/BENCH_micro.json).

The baseline and the fresh run rarely execute on identical hardware (a
dev box vs a CI runner), so raw ratios mostly measure the machine, not
the code: on a runner 3x faster than the baseline box every bench looks
"improved" and a real regression hides inside the speedup. The gate
therefore normalizes by the MEDIAN ratio across all shared benches —
the whole-suite machine factor — and thresholds each bench's deviation
from that median. A hot loop that got slower *relative to the rest of
the suite* trips the gate on any machine.

Per normalized bench: a slowdown above --warn (default 10%) prints a
warning; a slowdown above --fail (default 30%) on one of the
SERVER-ONLINE HOT-LOOP benches (the per-request serving cost the whole
compile-once design optimizes for: names containing 'ServerOnline')
fails the gate with a nonzero exit. Cold paths only ever warn — CI
runners are noisy, and the gate should catch real hot-loop regressions,
not scheduler jitter on a 2 us NTT.

A bench present in the baseline but MISSING from the fresh run is a
hard failure regardless of hot/cold: silently dropping a deleted bench
is how a removed hot-loop measurement (and whatever regression it was
guarding) escapes the gate. Deleting a bench on purpose means
refreshing the baseline in the same change.

Caveat (by construction): a change that slows EVERY bench uniformly is
indistinguishable from a slower machine and will not trip the gate; the
printed machine factor is the place to notice it.

Usage:
    scripts/bench_diff.py BASELINE.json FRESH.json [--warn 0.10] [--fail 0.30]

To refresh the baseline after an intentional perf change:
    C2PI_FAST=1 C2PI_BENCH_JSON=bench/baseline/BENCH_micro.json \\
        ./build/bench/micro_primitives
"""

import argparse
import json
import statistics
import sys

# Substrings naming the benches the gate may FAIL on (everything else is
# warn-only). These are the per-request serving hot loops.
HOT_LOOP_MARKERS = ("ServerOnline",)

# real_time normalization to nanoseconds.
TIME_UNITS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """name -> real_time in ns. Aggregate entries (mean/median/stddev)
    are skipped; C2PI_FAST runs emit one plain entry per bench."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    result = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        unit = bench.get("time_unit", "ns")
        if unit not in TIME_UNITS:
            raise SystemExit(f"{path}: unknown time_unit '{unit}' in {bench.get('name')}")
        result[bench["name"]] = float(bench["real_time"]) * TIME_UNITS[unit]
    if not result:
        raise SystemExit(f"{path}: no benchmark entries")
    return result


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--warn", type=float, default=0.10,
                        help="warn above this machine-normalized slowdown (default 0.10)")
    parser.add_argument("--fail", type=float, default=0.30,
                        help="fail hot-loop benches above this machine-normalized "
                             "slowdown (default 0.30)")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    fresh = load_benchmarks(args.fresh)

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        raise SystemExit("no benchmarks shared between baseline and fresh run")
    machine_factor = statistics.median(fresh[name] / baseline[name] for name in shared)
    print(f"machine factor (median fresh/baseline ratio over {len(shared)} benches): "
          f"{machine_factor:.3f}")
    if abs(machine_factor - 1.0) > 0.5:
        print("NOTE: baseline and fresh run differ a lot across the whole suite — "
              "different machine, build type, or a global shift; deltas below are "
              "relative to that factor", file=sys.stderr)

    failures, warnings, improvements = [], [], []
    width = max(len(name) for name in sorted(set(baseline) | set(fresh)))
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}  {'delta':>8}")
    for name in sorted(set(baseline) | set(fresh)):
        if name not in fresh:
            # Hard failure, not a warning: a bench that silently vanishes
            # from the run is exactly how a deleted hot-loop bench (and the
            # regression it would have caught) escapes the gate. Removing a
            # bench on purpose means removing it from the baseline too.
            failures.append(f"{name}: present in baseline but missing from fresh run "
                            "(deleted bench? refresh the baseline to drop it)")
            print(f"{name:<{width}}  {baseline[name]:>10.0f}ns  {'gone':>12}  "
                  f"{'--':>8}  FAIL")
            continue
        if name not in baseline:
            print(f"{name:<{width}}  {'new':>12}  {fresh[name]:>10.0f}ns  {'--':>8}")
            continue
        delta = fresh[name] / baseline[name] / machine_factor - 1.0
        hot = any(marker in name for marker in HOT_LOOP_MARKERS)
        flag = ""
        if hot and delta > args.fail:
            failures.append(f"{name}: {delta:+.1%} (hot loop, fail threshold {args.fail:.0%})")
            flag = "  FAIL"
        elif delta > args.warn:
            warnings.append(f"{name}: {delta:+.1%} (warn threshold {args.warn:.0%})")
            flag = "  WARN"
        elif delta < -args.fail:
            improvements.append(f"{name}: {delta:+.1%}")
            flag = "  IMPROVED"
        print(f"{name:<{width}}  {baseline[name]:>10.0f}ns  {fresh[name]:>10.0f}ns  "
              f"{delta:>+7.1%}{flag}")

    if improvements:
        # Large machine-normalized speedups are great news but also stale
        # baselines: until the baseline is refreshed the gate's median is
        # skewed and a later regression back to the OLD numbers would pass
        # silently. Nudge toward landing the win in the baseline (protocol
        # in docs/API.md and --help above).
        print(f"NOTE: {len(improvements)} bench(es) improved by more than "
              f"{args.fail:.0%} machine-normalized — if intentional, refresh "
              "bench/baseline/BENCH_micro.json so the new numbers become the "
              "floor (see --help)", file=sys.stderr)
    for message in warnings:
        print(f"WARNING: {message}", file=sys.stderr)
    for message in failures:
        print(f"FAILURE: {message}", file=sys.stderr)
    if failures:
        print("perf gate: FAILED — a server-online hot loop regressed relative to "
              "the rest of the suite, or a baselined bench is missing from the "
              "run; if the change is intentional, refresh "
              "bench/baseline/BENCH_micro.json (see --help)", file=sys.stderr)
        return 1
    print(f"perf gate: OK ({len(warnings)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
