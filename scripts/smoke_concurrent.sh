#!/usr/bin/env bash
# Concurrent serving smoke test: ONE pi_server with a serving pool, K
# parallel WEIGHTLESS pi_client processes. Requires that
#   (a) every one of the K clients completes and prints a prediction
#       (sessions really are served concurrently: pool of K workers,
#       K clients launched at once);
#   (b) the server drains cleanly, reports exactly K served sessions
#       with zero rejections/failures, and exits 0;
#   (c) the cross-client clear-tail batching path is exercised (the
#       server runs with a tail window; how many passes the window
#       yields is timing-dependent, so only success is asserted).
# Run by CI and registered as the `smoke_concurrent` ctest; also
# runnable by hand:
#
#   scripts/smoke_concurrent.sh [path/to/build/examples] [K]
#
# Uses an ephemeral port (the server's "listening on" line reports it),
# so parallel runs cannot collide.
set -euo pipefail

bin_dir=${1:-build/examples}
clients=${2:-4}
server_bin=$bin_dir/pi_server
client_bin=$bin_dir/pi_client
[[ -x $server_bin && -x $client_bin ]] || {
    echo "smoke_concurrent: missing $server_bin or $client_bin (build first)" >&2
    exit 1
}

workdir=$(mktemp -d)
server_log=$workdir/server.log
server_pid=
cleanup() {
    [[ -n $server_pid ]] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

"$server_bin" --port 0 --clients "$clients" --pool "$clients" --queue "$clients" \
    --tail-window 2000 >"$server_log" 2>&1 &
server_pid=$!

port=
for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$server_log")
    [[ -n $port ]] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$server_log" >&2; exit 1; }
    sleep 0.1
done
[[ -n $port ]] || { echo "smoke_concurrent: server never reported its port" >&2; cat "$server_log" >&2; exit 1; }

# K weightless clients, all in flight at once, each with its own input.
pids=()
for i in $(seq 1 "$clients"); do
    "$client_bin" --port "$port" --input-seed $((100 + i)) \
        >"$workdir/client_$i.log" 2>&1 &
    pids+=($!)
done

failed=0
for i in $(seq 1 "$clients"); do
    rc=0
    wait "${pids[$((i - 1))]}" || rc=$?
    if [[ $rc -ne 0 ]]; then
        echo "smoke_concurrent: client $i failed (rc=$rc)" >&2
        failed=1
    fi
done

server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=

echo "--- pi_server ---"
cat "$server_log"
for i in $(seq 1 "$clients"); do
    echo "--- pi_client $i ---"
    cat "$workdir/client_$i.log"
done

[[ $failed -eq 0 ]] || exit 1
[[ $server_rc -eq 0 ]] || { echo "smoke_concurrent: server failed (rc=$server_rc)" >&2; exit 1; }
for i in $(seq 1 "$clients"); do
    grep -q "predicted class:" "$workdir/client_$i.log" || {
        echo "smoke_concurrent: no prediction from client $i" >&2
        exit 1
    }
done
grep -q "served $clients sessions (0 rejected, 0 failed)" "$server_log" || {
    echo "smoke_concurrent: server did not report $clients clean sessions" >&2
    exit 1
}
echo "smoke_concurrent: OK ($clients parallel weightless clients, port $port)"
