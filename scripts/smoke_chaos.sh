#!/usr/bin/env bash
# Chaos smoke test: a forever-mode pi_server must survive misbehaving
# clients WITHOUT operator intervention, classify each failure, keep
# serving clean clients bit-identically, and still drain to exit 0 on
# SIGTERM. The storm, in order:
#   1. a clean client (baseline prediction);
#   2. a bootstrap laggard (--stall-ms) kill -9'd mid-stall — the server
#      must shed it on the handshake deadline as a client-abort/timeout,
#      not hold the slot for the full 2-minute protocol timeout;
#   3. a clean client again (containment: the slot came back);
#   4. a --runs 2 client whose second session resumes from the digest
#      cache ("artifact cache hit", zero artifact bytes reshipped);
#   5. a --pin client with a wrong digest — exits 5 (artifact swap)
#      without ever entering the protocol.
# Then SIGTERM: the server prints per-class failure counts and the
# digest-skip line, and exits 0 (failed sessions are an operating
# condition for a forever server, not an error).
# Registered as the `smoke_chaos` ctest; also runnable by hand:
#
#   scripts/smoke_chaos.sh [path/to/build/examples]
set -euo pipefail

bin_dir=${1:-build/examples}
server_bin=$bin_dir/pi_server
client_bin=$bin_dir/pi_client
[[ -x $server_bin && -x $client_bin ]] || {
    echo "smoke_chaos: missing $server_bin or $client_bin (build first)" >&2
    exit 1
}

workdir=$(mktemp -d)
server_log=$workdir/server.log
server_pid=
cleanup() {
    [[ -n $server_pid ]] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

# Forever mode (--clients 0): chaos must not require pre-declaring how
# many clients will show up. Short handshake deadline so the laggard is
# shed fast; the steady recv timeout stays at its 2-minute default.
"$server_bin" --port 0 --clients 0 --pool 2 --queue 2 \
    --handshake-timeout 1000 >"$server_log" 2>&1 &
server_pid=$!

port=
for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$server_log")
    [[ -n $port ]] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$server_log" >&2; exit 1; }
    sleep 0.1
done
[[ -n $port ]] || { echo "smoke_chaos: server never reported its port" >&2; cat "$server_log" >&2; exit 1; }

# 1: clean baseline.
"$client_bin" --port "$port" --input-seed 101 >"$workdir/client_1.log" 2>&1 ||
    { echo "smoke_chaos: baseline client failed" >&2; cat "$workdir/client_1.log" >&2; exit 1; }

# 2: the crashed laggard. --stall-ms parks it after connect; kill -9
# means no goodbye frame of any kind — the server sees a silent peer
# and must shed it on the 1 s handshake deadline.
"$client_bin" --port "$port" --stall-ms 10000 >"$workdir/client_2.log" 2>&1 &
laggard_pid=$!
sleep 0.7
kill -9 "$laggard_pid" 2>/dev/null || true
wait "$laggard_pid" 2>/dev/null || true

# Give the server the deadline window to classify and reclaim the slot.
for _ in $(seq 1 100); do
    grep -q "failed \[" "$server_log" && break
    sleep 0.1
done
grep -Eq "failed \[(client-abort|timeout)\]" "$server_log" || {
    echo "smoke_chaos: server never classified the killed laggard" >&2
    cat "$server_log" >&2
    exit 1
}

# 3: containment — the slot is serving again.
"$client_bin" --port "$port" --input-seed 102 >"$workdir/client_3.log" 2>&1 ||
    { echo "smoke_chaos: post-chaos client failed" >&2; cat "$workdir/client_3.log" >&2; exit 1; }

# 4: resumable bootstrap — run 2 must hit the in-process digest cache.
"$client_bin" --port "$port" --input-seed 103 --runs 2 >"$workdir/client_4.log" 2>&1 ||
    { echo "smoke_chaos: --runs 2 client failed" >&2; cat "$workdir/client_4.log" >&2; exit 1; }
grep -q "artifact cache hit" "$workdir/client_4.log" || {
    echo "smoke_chaos: second run did not resume from the artifact cache" >&2
    cat "$workdir/client_4.log" >&2
    exit 1
}

# 5: artifact-swap detection — a wrong pin must exit 5 before any
# protocol traffic.
bad_pin=$(printf '0%.0s' $(seq 1 64))
rc=0
"$client_bin" --port "$port" --pin "$bad_pin" >"$workdir/client_5.log" 2>&1 || rc=$?
[[ $rc -eq 5 ]] || {
    echo "smoke_chaos: wrong --pin exited $rc, want 5 (artifact swap)" >&2
    cat "$workdir/client_5.log" >&2
    exit 1
}

# Drain: a forever server full of chaos still exits 0.
kill -TERM "$server_pid"
server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=

echo "--- pi_server ---"
cat "$server_log"
for i in 1 2 3 4 5; do
    echo "--- pi_client $i ---"
    cat "$workdir/client_$i.log"
done

[[ $server_rc -eq 0 ]] || { echo "smoke_chaos: forever server exited $server_rc, want 0" >&2; exit 1; }
grep -q "failures by class:" "$server_log" || {
    echo "smoke_chaos: stats line missing the per-class failure breakdown" >&2
    exit 1
}
grep -q "digest-cache skips" "$server_log" || {
    echo "smoke_chaos: stats line missing the digest-cache skip count" >&2
    exit 1
}
# 4 clean sessions served: clients 1 and 3, plus both --runs 2 sessions
# of client 4. The swap client never enters the protocol (it walks away
# before the want byte), so the server sees one more failed bootstrap,
# not a served session.
grep -Eq "served 4 sessions \([0-9]+ rejected, [0-9]+ failed\)" "$server_log" || {
    echo "smoke_chaos: server did not report 4 served sessions" >&2
    exit 1
}
echo "smoke_chaos: OK (laggard shed, slot reclaimed, bootstrap resumed, swap refused; port $port)"
